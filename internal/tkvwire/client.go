package tkvwire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/shrink-tm/shrink/internal/tkv"
)

// ErrClosed is returned by calls on a closed (or read-failed) connection.
var ErrClosed = errors.New("tkvwire: connection closed")

// StatusError is an application-level error response from the server.
type StatusError struct {
	Status uint16
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("tkvwire: server status %d: %s", e.Status, e.Msg)
}

// Is maps statuses onto the tkv sentinel errors, so errors.Is(err,
// tkv.ErrUser), errors.Is(err, tkv.ErrCASMismatch) and errors.Is(err,
// tkv.ErrBackpressure) work across the wire exactly as they do in-process.
func (e *StatusError) Is(target error) bool {
	switch target {
	case tkv.ErrUser:
		return e.Status == StatusBadRequest
	case tkv.ErrCASMismatch:
		return e.Status == StatusCASMismatch
	case tkv.ErrBackpressure:
		return e.Status == StatusBackpressure
	case tkv.ErrNotPrimary:
		return e.Status == StatusNotPrimary
	}
	return false
}

// call is one in-flight request's completion slot.
type call struct {
	ready   chan struct{}
	op      byte
	flags   byte
	status  uint16
	payload *Frame // response payload (no header); nil on transport error
	err     error
}

var callPool = sync.Pool{New: func() any { return &call{ready: make(chan struct{}, 1)} }}

// Conn is a client connection speaking the binary protocol. It is safe for
// concurrent use: calls from many goroutines interleave on the wire
// (pipelining), each matched to its response by request id. Writes are
// flush-coalesced — when several goroutines send at once, only the last
// one pays the syscall.
type Conn struct {
	nc net.Conn

	wmu     sync.Mutex
	bw      *bufio.Writer
	waiters atomic.Int32

	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]*call
	readErr error // set once the read loop dies; fails all later calls
}

// Dial connects to a tkvwire server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Conn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]*call),
	}
	go c.readLoop()
	return c, nil
}

// Close closes the connection; in-flight calls fail with ErrClosed.
func (c *Conn) Close() error { return c.nc.Close() }

// readLoop matches response frames to pending calls by id.
func (c *Conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var hdr [HeaderSize]byte
	var err error
	for {
		if _, err = io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		var h Header
		if h, err = ParseHeader(hdr[:], MaxRespFrame); err != nil {
			break
		}
		payload := GetFrame(h.PayloadLen())
		payload.B = payload.B[:h.PayloadLen()]
		if _, err = io.ReadFull(br, payload.B); err != nil {
			PutFrame(payload)
			break
		}
		c.pmu.Lock()
		cl := c.pending[h.ID]
		delete(c.pending, h.ID)
		c.pmu.Unlock()
		if cl == nil {
			// A response nobody asked for: the stream is out of sync.
			PutFrame(payload)
			err = fmt.Errorf("%w: unsolicited response id %d", ErrFrame, h.ID)
			break
		}
		cl.op, cl.flags, cl.status, cl.payload = h.Op, h.Flags, h.Status, payload
		cl.ready <- struct{}{}
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		err = ErrClosed
	}
	c.pmu.Lock()
	c.readErr = err
	for id, cl := range c.pending {
		delete(c.pending, id)
		cl.err = err
		cl.ready <- struct{}{}
	}
	c.pmu.Unlock()
	c.nc.Close()
}

// do registers the call, writes req (consuming the frame), and waits for
// the response. The returned call must be released with c.release.
func (c *Conn) do(id uint64, req *Frame) (*call, error) {
	cl := callPool.Get().(*call)
	cl.err, cl.payload = nil, nil
	c.pmu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		callPool.Put(cl)
		PutFrame(req)
		return nil, err
	}
	c.pending[id] = cl
	c.pmu.Unlock()

	// Flush-coalesced write: skip the flush when another sender is already
	// waiting for the lock — the last writer in the convoy flushes for all.
	c.waiters.Add(1)
	c.wmu.Lock()
	c.waiters.Add(-1)
	_, werr := c.bw.Write(req.B)
	if werr == nil && c.waiters.Load() == 0 {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	PutFrame(req)
	if werr != nil {
		// The read loop will fail every pending call (including this one)
		// once the close propagates; surface the write error directly.
		c.nc.Close()
	}

	<-cl.ready
	if cl.err != nil {
		err := cl.err
		callPool.Put(cl)
		return nil, err
	}
	return cl, nil
}

// release returns a completed call's resources to their pools.
func (c *Conn) release(cl *call) {
	if cl.payload != nil {
		PutFrame(cl.payload)
		cl.payload = nil
	}
	callPool.Put(cl)
}

// errOf converts a non-OK response into an error (nil for OK).
func errOf(cl *call) error {
	if cl.status == StatusOK {
		return nil
	}
	return &StatusError{Status: cl.status, Msg: string(cl.payload.B)}
}

// Hello performs the protocol handshake, requesting feature bits, and
// returns the bits the server granted (requested ∩ served). Optional:
// connections that skip it keep the pre-handshake opcode family, which is
// the whole KV surface — only the replication opcodes require it.
func (c *Conn) Hello(features uint64) (uint64, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize + 10)
	f.B = AppendHelloReq(f.B, id, ProtoVersion, features)
	cl, err := c.do(id, f)
	if err != nil {
		return 0, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return 0, err
	}
	_, granted, err := ParseHello(cl.payload.B)
	return granted, err
}

// Ping round-trips an empty frame.
func (c *Conn) Ping() error {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize)
	f.B = AppendPingReq(f.B, id)
	cl, err := c.do(id, f)
	if err != nil {
		return err
	}
	defer c.release(cl)
	return errOf(cl)
}

// Get reads one key.
func (c *Conn) Get(key uint64) (string, bool, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize + 8)
	f.B = AppendGetReq(f.B, id, key)
	cl, err := c.do(id, f)
	if err != nil {
		return "", false, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return "", false, err
	}
	return ParseGetResp(cl.flags, cl.payload.B)
}

// Put stores val under key, reporting whether the key was created.
func (c *Conn) Put(key uint64, val string) (bool, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize + 12 + len(val))
	f.B = AppendPutReq(f.B, id, key, unsafeBytes(val))
	cl, err := c.do(id, f)
	if err != nil {
		return false, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return false, err
	}
	return cl.flags&FlagBool != 0, nil
}

// Delete removes key, reporting whether it was present.
func (c *Conn) Delete(key uint64) (bool, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize + 8)
	f.B = AppendDeleteReq(f.B, id, key)
	cl, err := c.do(id, f)
	if err != nil {
		return false, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return false, err
	}
	return cl.flags&FlagBool != 0, nil
}

// CAS compare-and-swaps key from old to new, reporting whether it swapped.
func (c *Conn) CAS(key uint64, old, new string) (bool, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize + 16 + len(old) + len(new))
	f.B = AppendCASReq(f.B, id, key, unsafeBytes(old), unsafeBytes(new))
	cl, err := c.do(id, f)
	if err != nil {
		return false, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return false, err
	}
	return cl.flags&FlagBool != 0, nil
}

// Add adds delta to the counter under key and returns the new value.
func (c *Conn) Add(key uint64, delta int64) (int64, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize + 16)
	f.B = AppendAddReq(f.B, id, key, delta)
	cl, err := c.do(id, f)
	if err != nil {
		return 0, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return 0, err
	}
	n, err := ParseUintResp(OpAdd, cl.payload.B)
	return int64(n), err
}

// MGet reads many keys in one round trip; results come back in key order.
func (c *Conn) MGet(keys []uint64) ([]tkv.OpResult, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize + 4 + 8*len(keys))
	f.B = AppendMGetReq(f.B, id, keys)
	cl, err := c.do(id, f)
	if err != nil {
		return nil, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return nil, err
	}
	return ParseResultsResp(OpMGet, cl.payload.B)
}

// Batch executes ops atomically. A batch refused whole by a failed cas
// compare returns the describing results alongside an error matching
// tkv.ErrCASMismatch via errors.Is, mirroring Store.Batch.
func (c *Conn) Batch(ops []tkv.Op) ([]tkv.OpResult, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize + 64 + 64*len(ops)) // size hint; appends may grow it
	f.B = AppendBatchReq(f.B, id, ops)
	cl, err := c.do(id, f)
	if err != nil {
		return nil, err
	}
	defer c.release(cl)
	if cl.status == StatusCASMismatch {
		results, perr := ParseResultsResp(OpBatch, cl.payload.B)
		if perr != nil {
			return nil, perr
		}
		return results, &StatusError{Status: StatusCASMismatch, Msg: "batch cas compare failed"}
	}
	if err := errOf(cl); err != nil {
		return nil, err
	}
	return ParseResultsResp(OpBatch, cl.payload.B)
}

// Len returns the store's key count under a consistent cut.
func (c *Conn) Len() (int, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize)
	f.B = AppendEmptyReq(f.B, OpLen, id)
	cl, err := c.do(id, f)
	if err != nil {
		return 0, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return 0, err
	}
	n, err := ParseUintResp(OpLen, cl.payload.B)
	return int(n), err
}

// Snapshot returns a consistent copy of the whole store.
func (c *Conn) Snapshot() (map[uint64]string, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize)
	f.B = AppendEmptyReq(f.B, OpSnap, id)
	cl, err := c.do(id, f)
	if err != nil {
		return nil, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return nil, err
	}
	return ParseSnapResp(cl.payload.B)
}

// Stats returns the server's statistics.
func (c *Conn) Stats() (tkv.Stats, error) {
	id := c.nextID.Add(1)
	f := GetFrame(HeaderSize)
	f.B = AppendEmptyReq(f.B, OpStats, id)
	cl, err := c.do(id, f)
	if err != nil {
		return tkv.Stats{}, err
	}
	defer c.release(cl)
	if err := errOf(cl); err != nil {
		return tkv.Stats{}, err
	}
	var st tkv.Stats
	err = json.Unmarshal(cl.payload.B, &st)
	return st, err
}

// unsafeBytes views a string's bytes without copying. The view is only ever
// written to the connection buffer (never retained or mutated), so the
// aliasing is safe.
func unsafeBytes(s string) []byte {
	return []byte(s) // kept simple: the copy is on the client side and off the gated path
}
