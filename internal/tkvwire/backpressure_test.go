package tkvwire

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"github.com/shrink-tm/shrink/internal/tkv"
)

// startShedServer brings up a wire server whose store runs the admission
// controller in drill mode (ShedKnee 0: always past the knee), so the shed
// probability ramps to ShedMax within a few ticks regardless of load.
// With the default ShedMax of 0.8, batches shed at min(1, 2·0.8) = always —
// a deterministic rejection path for the tests below.
func startShedServer(t testing.TB) string {
	ac := tkv.DefaultAdmitConfig()
	ac.Tick = 5 * time.Millisecond
	ac.ShedKnee = 0 // drill mode
	ac.PredictorRouting = false
	return startServerWith(t, tkv.Config{Shards: 4, PoolSize: 2, Buckets: 128, Admission: &ac})
}

// waitForShed drives batches until the controller's ramp is complete and
// every batch sheds, so tests observe the steady overloaded state rather
// than the ramp. Mid-ramp sheds are probabilistic; 30 consecutive ones only
// happen once the batch shed probability is pinned at 1.
func waitForShed(t testing.TB, c *Conn) {
	t.Helper()
	ops := []tkv.Op{{Kind: tkv.OpPut, Key: 1, Value: "v"}}
	deadline := time.Now().Add(10 * time.Second)
	streak := 0
	for time.Now().Before(deadline) {
		// One probe per tick: a 30-shed streak then spans ≥30 ticks, well
		// past the ~8 the ramp needs, so lucky mid-ramp streaks can't pass.
		time.Sleep(5 * time.Millisecond)
		_, err := c.Batch(ops)
		switch {
		case errors.Is(err, tkv.ErrBackpressure):
			if streak++; streak >= 30 {
				return
			}
		case err == nil:
			streak = 0
		default:
			t.Fatalf("batch during ramp: %v", err)
		}
	}
	t.Fatal("drill-mode controller never reached steady batch shedding")
}

// TestServerBackpressureStatus: shed requests must come back as
// StatusBackpressure and map to tkv.ErrBackpressure through errors.Is —
// the same sentinel a caller would see in-process — while reads keep
// flowing and the connection stays healthy.
func TestServerBackpressureStatus(t *testing.T) {
	addr := startShedServer(t)
	c := dialTest(t, addr)
	waitForShed(t, c)

	// Batches shed deterministically past the ramp.
	_, err := c.Batch([]tkv.Op{{Kind: tkv.OpPut, Key: 2, Value: "w"}})
	if !errors.Is(err, tkv.ErrBackpressure) {
		t.Fatalf("shed batch error = %v, want ErrBackpressure", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusBackpressure {
		t.Fatalf("shed batch error = %#v, want StatusError{StatusBackpressure}", err)
	}

	// Single-key writes shed probabilistically at ShedMax = 0.8: over a few
	// hundred puts both outcomes must appear, and nothing else.
	var shed, ok int
	for i := 0; i < 400; i++ {
		_, err := c.Put(uint64(i), "x")
		switch {
		case errors.Is(err, tkv.ErrBackpressure):
			shed++
		case err == nil:
			ok++
		default:
			t.Fatalf("put %d: %v", i, err)
		}
		// Reads are never shed.
		if _, _, err := c.Get(uint64(i)); err != nil {
			t.Fatalf("get under shedding: %v", err)
		}
	}
	if shed == 0 {
		t.Fatal("no put was shed in drill mode")
	}
	if ok == 0 {
		t.Fatal("shedding starved every put (ShedMax must keep some flowing)")
	}

	// The connection survives rejection after rejection.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after backpressure storm: %v", err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Shed == 0 {
		t.Fatal("server stats report zero sheds after a backpressure storm")
	}
}

// TestWireShedZeroAlloc is the alloc gate for the rejection path: past the
// overload knee a shed batch must cost only a pooled error frame — no
// request parse, no op slice, no message allocation. Same measurement
// technique as TestWireGetPutZeroAlloc: process-wide Mallocs around a
// raw-frame loop, GC parked.
func TestWireShedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates per access")
	}
	addr := startShedServer(t)

	// Ramp to the deterministic-shed state before measuring.
	rampConn := dialTest(t, addr)
	waitForShed(t, rampConn)

	nc := rawDial(t, addr)
	batchFrame := AppendBatchReq(nil, 3, []tkv.Op{
		{Kind: tkv.OpPut, Key: 7, Value: "v0"},
		{Kind: tkv.OpAdd, Key: 8, Delta: 1},
	})
	resp := make([]byte, 4096)

	// roundTrip sends the batch and asserts it was shed (the controller is
	// past the knee: batch shed probability is pinned at 1).
	roundTrip := func() error {
		if _, err := nc.Write(batchFrame); err != nil {
			return err
		}
		if _, err := io.ReadFull(nc, resp[:HeaderSize]); err != nil {
			return err
		}
		h, err := ParseHeader(resp[:HeaderSize], MaxRespFrame)
		if err != nil {
			return err
		}
		if _, err := io.ReadFull(nc, resp[HeaderSize:HeaderSize+h.PayloadLen()]); err != nil {
			return err
		}
		if h.Status != StatusBackpressure {
			return fmt.Errorf("shed batch status = %d, want %d", h.Status, StatusBackpressure)
		}
		return nil
	}

	// Warm-up: populate the frame pool with the error-response size class.
	for i := 0; i < 2000; i++ {
		if err := roundTrip(); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()

	const ops = 4000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		if err := roundTrip(); err != nil {
			t.Fatalf("measured run: %v", err)
		}
	}
	runtime.ReadMemStats(&after)

	perOp := float64(after.Mallocs-before.Mallocs) / float64(ops)
	t.Logf("shed rejection path: %.4f allocs/op (%d mallocs over %d ops)",
		perOp, after.Mallocs-before.Mallocs, ops)
	if perOp > 0.05 {
		t.Fatalf("shed rejection path allocates: %.4f allocs/op", perOp)
	}
}
