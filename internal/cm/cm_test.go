package cm_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/shrink-tm/shrink/internal/cm"
	"github.com/shrink-tm/shrink/internal/stm"
	"github.com/shrink-tm/shrink/internal/stm/swiss"
)

func ctxPair() (*stm.ThreadCtx, *stm.ThreadCtx) {
	return &stm.ThreadCtx{ID: 0}, &stm.ThreadCtx{ID: 1}
}

func TestSuicideAlwaysAbortsSelf(t *testing.T) {
	var s cm.Suicide
	a, b := ctxPair()
	for _, kind := range []stm.ConflictKind{stm.ReadWrite, stm.WriteWrite, stm.Validation} {
		if got := s.OnConflict(a, b, kind); got != stm.AbortSelf {
			t.Fatalf("resolution = %v, want AbortSelf", got)
		}
	}
	if got := s.OnConflict(a, nil, stm.Validation); got != stm.AbortSelf {
		t.Fatal("nil enemy must abort self")
	}
}

func TestPoliteWaitsThenAborts(t *testing.T) {
	p := &cm.Polite{MaxWaits: 2}
	a, b := ctxPair()
	p.RegisterThread(a)
	p.OnStart(a, 0)
	if p.OnConflict(a, b, stm.ReadWrite) != stm.WaitRetry {
		t.Fatal("first conflict should wait")
	}
	if p.OnConflict(a, b, stm.ReadWrite) != stm.WaitRetry {
		t.Fatal("second conflict should wait")
	}
	if p.OnConflict(a, b, stm.ReadWrite) != stm.AbortSelf {
		t.Fatal("budget exhausted: should abort")
	}
	// A new attempt resets the budget.
	p.OnStart(a, 1)
	if p.OnConflict(a, b, stm.ReadWrite) != stm.WaitRetry {
		t.Fatal("budget did not reset on new attempt")
	}
}

func TestGreedyOlderWins(t *testing.T) {
	g := &cm.Greedy{}
	a, b := ctxPair()
	g.OnStart(a, 0) // a gets the earlier timestamp
	g.OnStart(b, 0)
	if got := g.OnConflict(a, b, stm.WriteWrite); got != stm.AbortOther {
		t.Fatalf("older asker should doom younger enemy, got %v", got)
	}
	if got := g.OnConflict(b, a, stm.WriteWrite); got != stm.AbortSelf {
		t.Fatalf("younger asker should abort self, got %v", got)
	}
	// Retries keep the original timestamp.
	g.OnStart(b, 1)
	if got := g.OnConflict(b, a, stm.WriteWrite); got != stm.AbortSelf {
		t.Fatalf("retry must not rejuvenate, got %v", got)
	}
	// After a commits, its priority clears and b's old stamp wins.
	g.OnCommit(a)
	if got := g.OnConflict(b, a, stm.WriteWrite); got != stm.AbortOther {
		t.Fatalf("committed enemy should lose, got %v", got)
	}
}

func TestKarmaMoreWorkWins(t *testing.T) {
	k := cm.Karma{}
	a, b := ctxPair()
	for i := 0; i < 5; i++ {
		k.OnStart(a, i)
	}
	k.OnStart(b, 0)
	if got := k.OnConflict(a, b, stm.WriteWrite); got != stm.AbortOther {
		t.Fatalf("high-karma asker should win, got %v", got)
	}
	if got := k.OnConflict(b, a, stm.WriteWrite); got != stm.AbortSelf {
		t.Fatalf("low-karma asker should yield, got %v", got)
	}
	k.OnCommit(a)
	if a.Priority.Load() != 0 {
		t.Fatal("karma must reset at commit")
	}
}

func TestSerializerLoserWaitsForWinner(t *testing.T) {
	s := cm.NewSerializer()
	winner, loser := ctxPair()
	s.OnStart(winner, 0)
	s.OnStart(loser, 0)
	if got := s.OnConflict(loser, winner, stm.WriteWrite); got != stm.AbortSelf {
		t.Fatalf("loser resolution = %v", got)
	}
	released := make(chan struct{})
	go func() {
		s.OnStart(loser, 1) // blocks until winner finishes (or timeout)
		close(released)
	}()
	s.OnCommit(winner)
	<-released // must not hang
}

func TestSerializerTimeoutBreaksCycles(t *testing.T) {
	s := cm.NewSerializer()
	a, b := ctxPair()
	s.OnStart(a, 0)
	s.OnStart(b, 0)
	// Mutual conflict: both lose against each other.
	s.OnConflict(a, b, stm.WriteWrite)
	s.OnConflict(b, a, stm.WriteWrite)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); s.OnStart(a, 1) }()
		go func() { defer wg.Done(); s.OnStart(b, 1) }()
		wg.Wait()
		close(done)
	}()
	<-done // the bounded wait must break the cycle
}

// TestAbortOtherEndToEnd verifies the doomed-flag path: under Greedy, an
// older transaction writing into a var held by a younger one dooms the
// younger transaction, which observes the flag, aborts, and retries.
func TestAbortOtherEndToEnd(t *testing.T) {
	tm := swiss.New(swiss.Options{CM: &cm.Greedy{}})
	v := stm.NewVar(0)
	old := tm.Register("old")
	young := tm.Register("young")

	oldStarted := make(chan struct{})
	youngLocked := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		first := true
		_ = old.Atomically(func(tx stm.Tx) error {
			if first {
				first = false
				close(oldStarted) // old holds the earlier Greedy timestamp
				<-youngLocked
			}
			return tx.Write(v, 1)
		})
	}()
	go func() {
		defer wg.Done()
		<-oldStarted
		first := true
		_ = young.Atomically(func(tx stm.Tx) error {
			if err := tx.Write(v, 2); err != nil {
				return err
			}
			if first {
				first = false
				close(youngLocked)
				// Linger until the older transaction dooms us
				// (bounded, in case timing shifts).
				for i := 0; i < 1_000_000 && !young.Ctx().Doomed.Load(); i++ {
					runtime.Gosched()
				}
			}
			return nil
		})
	}()
	wg.Wait()
	if young.Ctx().Aborts.Load() == 0 {
		t.Fatal("young transaction was never doomed/aborted")
	}
	th := tm.Register("check")
	_ = th.Atomically(func(tx stm.Tx) error {
		got, err := tx.Read(v)
		if err != nil {
			return err
		}
		if got.(int) != 1 && got.(int) != 2 {
			return fmt.Errorf("final value = %v, want 1 or 2", got)
		}
		return nil
	})
}

func TestPolkaPhases(t *testing.T) {
	p := &cm.Polka{MaxWaits: 2}
	a, b := ctxPair()
	p.RegisterThread(a)
	p.RegisterThread(b)
	// Equal karma: polite waits, then abort self.
	p.OnStart(a, 0)
	p.OnStart(b, 0)
	if got := p.OnConflict(a, b, stm.WriteWrite); got != stm.WaitRetry {
		t.Fatalf("first conflict = %v, want WaitRetry", got)
	}
	if got := p.OnConflict(a, b, stm.WriteWrite); got != stm.WaitRetry {
		t.Fatalf("second conflict = %v, want WaitRetry", got)
	}
	if got := p.OnConflict(a, b, stm.WriteWrite); got != stm.AbortSelf {
		t.Fatalf("exhausted waits = %v, want AbortSelf", got)
	}
	// Karma dominance: repeated attempts raise a's priority above b's.
	for i := 1; i < 5; i++ {
		p.OnStart(a, i)
	}
	if got := p.OnConflict(a, b, stm.WriteWrite); got != stm.AbortOther {
		t.Fatalf("karma-rich asker = %v, want AbortOther", got)
	}
	// Commit resets karma.
	p.OnCommit(a)
	if a.Priority.Load() != 0 {
		t.Fatal("karma not reset at commit")
	}
	if got := p.OnConflict(a, nil, stm.Validation); got != stm.AbortSelf {
		t.Fatalf("nil enemy = %v, want AbortSelf", got)
	}
}

func TestPolkaEndToEnd(t *testing.T) {
	tm := swiss.New(swiss.Options{CM: &cm.Polka{}})
	counter := stm.NewVar(0)
	const threads, iters = 4, 100
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		th := tm.Register(fmt.Sprintf("t%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				_ = th.Atomically(func(tx stm.Tx) error {
					n, err := tx.Read(counter)
					if err != nil {
						return err
					}
					return tx.Write(counter, n.(int)+1)
				})
			}
		}()
	}
	wg.Wait()
	th := tm.Register("check")
	_ = th.Atomically(func(tx stm.Tx) error {
		n, err := tx.Read(counter)
		if err != nil {
			return err
		}
		if n.(int) != threads*iters {
			t.Errorf("counter = %d, want %d", n.(int), threads*iters)
		}
		return nil
	})
}
