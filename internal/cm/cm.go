// Package cm implements the contention managers used as the reactive
// ("curing") layer of the STM engines: Suicide (TinySTM's default), Polite,
// Karma, Greedy/Timestamp, and the CAR-STM Serializer. Contention managers
// resolve conflicts after they are detected; they are complementary to the
// preventive schedulers in package sched, exactly as the paper frames them.
package cm

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/shrink-tm/shrink/internal/stm"
)

// Suicide aborts the asking transaction on every conflict and retries
// immediately. This is TinySTM 0.9.5's default policy and the cheapest
// manager; under overload it produces the repetitive-abort collapse that the
// paper's Figure 8 shows for base TinySTM.
type Suicide struct{}

var _ stm.ContentionManager = Suicide{}

// RegisterThread implements stm.ContentionManager.
func (Suicide) RegisterThread(*stm.ThreadCtx) {}

// OnStart implements stm.ContentionManager.
func (Suicide) OnStart(*stm.ThreadCtx, int) {}

// OnConflict implements stm.ContentionManager.
func (Suicide) OnConflict(_, _ *stm.ThreadCtx, _ stm.ConflictKind) stm.Resolution {
	return stm.AbortSelf
}

// OnCommit implements stm.ContentionManager.
func (Suicide) OnCommit(*stm.ThreadCtx) {}

// OnAbort implements stm.ContentionManager.
func (Suicide) OnAbort(*stm.ThreadCtx) {}

// Polite waits politely for the enemy a bounded number of times per attempt
// before giving up and aborting itself. The per-thread wait budget resets at
// the start of each attempt.
type Polite struct {
	// MaxWaits is the number of conflicts per attempt resolved by waiting
	// before the manager switches to aborting itself. Zero means 4.
	MaxWaits int
}

type politeState struct{ waits int }

var _ stm.ContentionManager = (*Polite)(nil)

// RegisterThread implements stm.ContentionManager.
func (p *Polite) RegisterThread(t *stm.ThreadCtx) { t.CMState = &politeState{} }

// OnStart implements stm.ContentionManager.
func (p *Polite) OnStart(t *stm.ThreadCtx, _ int) {
	if s, ok := t.CMState.(*politeState); ok {
		s.waits = 0
	}
}

// OnConflict implements stm.ContentionManager.
func (p *Polite) OnConflict(t, _ *stm.ThreadCtx, _ stm.ConflictKind) stm.Resolution {
	maxWaits := p.MaxWaits
	if maxWaits == 0 {
		maxWaits = 4
	}
	s, ok := t.CMState.(*politeState)
	if !ok {
		return stm.AbortSelf
	}
	if s.waits < maxWaits {
		s.waits++
		return stm.WaitRetry
	}
	return stm.AbortSelf
}

// OnCommit implements stm.ContentionManager.
func (p *Polite) OnCommit(*stm.ThreadCtx) {}

// OnAbort implements stm.ContentionManager.
func (p *Polite) OnAbort(*stm.ThreadCtx) {}

// Greedy implements timestamp-based conflict resolution in the spirit of the
// Greedy contention manager (Guerraoui et al.): the transaction that started
// earlier (smaller timestamp) wins; the younger transaction aborts itself if
// it is the asker, or is doomed if it is the enemy. Timestamps are assigned
// at the first attempt of a transaction and kept across retries, which gives
// the pending-commit property (the oldest running transaction is never
// aborted).
type Greedy struct {
	clock atomic.Uint64
}

var _ stm.ContentionManager = (*Greedy)(nil)

// RegisterThread implements stm.ContentionManager.
func (g *Greedy) RegisterThread(*stm.ThreadCtx) {}

// OnStart implements stm.ContentionManager.
func (g *Greedy) OnStart(t *stm.ThreadCtx, attempt int) {
	if attempt == 0 {
		t.Priority.Store(g.clock.Add(1))
	}
}

// OnConflict implements stm.ContentionManager.
func (g *Greedy) OnConflict(t, enemy *stm.ThreadCtx, _ stm.ConflictKind) stm.Resolution {
	if enemy == nil {
		return stm.AbortSelf
	}
	mine, theirs := t.Priority.Load(), enemy.Priority.Load()
	if mine != 0 && (theirs == 0 || mine < theirs) {
		return stm.AbortOther
	}
	return stm.AbortSelf
}

// OnCommit implements stm.ContentionManager.
func (g *Greedy) OnCommit(t *stm.ThreadCtx) { t.Priority.Store(0) }

// OnAbort implements stm.ContentionManager.
func (g *Greedy) OnAbort(*stm.ThreadCtx) {}

// Karma resolves conflicts by accumulated work: each commit raises a
// thread's karma by the attempt count, and the transaction with less karma
// yields. Ties go to the asker aborting itself.
type Karma struct{}

var _ stm.ContentionManager = Karma{}

// RegisterThread implements stm.ContentionManager.
func (Karma) RegisterThread(*stm.ThreadCtx) {}

// OnStart implements stm.ContentionManager.
func (Karma) OnStart(t *stm.ThreadCtx, attempt int) {
	// Karma grows with invested work: count attempts.
	t.Priority.Add(1)
}

// OnConflict implements stm.ContentionManager.
func (Karma) OnConflict(t, enemy *stm.ThreadCtx, _ stm.ConflictKind) stm.Resolution {
	if enemy == nil {
		return stm.AbortSelf
	}
	if t.Priority.Load() > enemy.Priority.Load() {
		return stm.AbortOther
	}
	return stm.AbortSelf
}

// OnCommit implements stm.ContentionManager.
func (Karma) OnCommit(t *stm.ThreadCtx) { t.Priority.Store(0) }

// OnAbort implements stm.ContentionManager.
func (Karma) OnAbort(*stm.ThreadCtx) {}

// Serializer is the CAR-STM contention manager analyzed in Theorem 1: after
// a conflict between two transactions, the loser is scheduled strictly after
// the winner, so the same pair never conflicts twice. We realize "after" by
// having the loser wait until the winner's current transaction finishes
// (tracked by an epoch counter per thread) before restarting.
type Serializer struct {
	mu     sync.Mutex
	waitOn map[int]chan struct{} // loser thread ID -> winner-done channel
	active map[int]chan struct{} // thread ID -> channel closed at tx end
}

var _ stm.ContentionManager = (*Serializer)(nil)

// NewSerializer returns a ready Serializer.
func NewSerializer() *Serializer {
	return &Serializer{
		waitOn: make(map[int]chan struct{}),
		active: make(map[int]chan struct{}),
	}
}

// RegisterThread implements stm.ContentionManager.
func (s *Serializer) RegisterThread(*stm.ThreadCtx) {}

// OnStart implements stm.ContentionManager. If the thread lost a previous
// conflict, it blocks here until the winner's transaction has finished. The
// wait is bounded: CAR-STM moves the loser onto the winner's core, which
// cannot deadlock; our wait-based rendering could (two losers waiting on
// each other's unfinished transactions), so a timeout breaks such cycles.
func (s *Serializer) OnStart(t *stm.ThreadCtx, _ int) {
	s.mu.Lock()
	ch := s.waitOn[t.ID]
	delete(s.waitOn, t.ID)
	if _, ok := s.active[t.ID]; !ok {
		s.active[t.ID] = make(chan struct{})
	}
	s.mu.Unlock()
	if ch != nil {
		select {
		case <-ch:
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// OnConflict implements stm.ContentionManager: the asker loses, aborts, and
// is queued behind the enemy.
func (s *Serializer) OnConflict(t, enemy *stm.ThreadCtx, _ stm.ConflictKind) stm.Resolution {
	if enemy != nil {
		s.mu.Lock()
		if ch, ok := s.active[enemy.ID]; ok {
			s.waitOn[t.ID] = ch
		}
		s.mu.Unlock()
	}
	return stm.AbortSelf
}

func (s *Serializer) finish(t *stm.ThreadCtx) {
	s.mu.Lock()
	ch, ok := s.active[t.ID]
	delete(s.active, t.ID)
	s.mu.Unlock()
	if ok {
		close(ch)
	}
}

// OnCommit implements stm.ContentionManager.
func (s *Serializer) OnCommit(t *stm.ThreadCtx) { s.finish(t) }

// OnAbort implements stm.ContentionManager.
func (s *Serializer) OnAbort(*stm.ThreadCtx) {}

// Polka combines Karma's priority accumulation with Polite's bounded
// waiting (Scherer & Scott's hybrid, the manager SwissTM's two-phase
// scheme descends from): on conflict, a transaction with more accumulated
// karma than its enemy dooms it; otherwise it waits politely up to
// (enemyKarma - myKarma) capped rounds before aborting itself.
type Polka struct {
	// MaxWaits caps the polite phase per attempt (0 means 3).
	MaxWaits int
}

type polkaState struct{ waits int }

var _ stm.ContentionManager = (*Polka)(nil)

// RegisterThread implements stm.ContentionManager.
func (p *Polka) RegisterThread(t *stm.ThreadCtx) { t.CMState = &polkaState{} }

// OnStart implements stm.ContentionManager: karma grows with invested
// attempts and resets only at commit.
func (p *Polka) OnStart(t *stm.ThreadCtx, attempt int) {
	if s, ok := t.CMState.(*polkaState); ok {
		s.waits = 0
	}
	t.Priority.Add(1)
}

// OnConflict implements stm.ContentionManager.
func (p *Polka) OnConflict(t, enemy *stm.ThreadCtx, _ stm.ConflictKind) stm.Resolution {
	if enemy == nil {
		return stm.AbortSelf
	}
	mine, theirs := t.Priority.Load(), enemy.Priority.Load()
	if mine > theirs {
		return stm.AbortOther
	}
	maxWaits := p.MaxWaits
	if maxWaits == 0 {
		maxWaits = 3
	}
	if s, ok := t.CMState.(*polkaState); ok && s.waits < maxWaits {
		s.waits++
		return stm.WaitRetry
	}
	return stm.AbortSelf
}

// OnCommit implements stm.ContentionManager.
func (p *Polka) OnCommit(t *stm.ThreadCtx) { t.Priority.Store(0) }

// OnAbort implements stm.ContentionManager.
func (p *Polka) OnAbort(*stm.ThreadCtx) {}
