module github.com/shrink-tm/shrink

go 1.24
