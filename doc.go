// Package shrink is a Go reproduction of "Preventing versus Curing:
// Avoiding Conflicts in Transactional Memories" (Dragojević, Singh,
// Guerraoui, Singh; PODC 2009): the Shrink prediction-based transaction
// scheduler, two word-based STM engines (SwissTM-like and TinySTM-like) it
// attaches to, the baseline schedulers and contention managers it is
// evaluated against, the benchmarks of the paper's evaluation (STMBench7,
// ten STAMP kernels, a red-black tree microbenchmark), and a simulator for
// the paper's scheduling theory (Theorems 1-3).
//
// The implementation lives under internal/; the runnable entry points are
// the commands under cmd/ (one per figure family), the examples under
// examples/, and the per-figure benchmarks in bench_test.go. See README.md
// for a map and EXPERIMENTS.md for measured-versus-paper results.
package shrink

// Version identifies the reproduction release.
const Version = "1.0.0"
