// Package shrink is a Go reproduction of "Preventing versus Curing:
// Avoiding Conflicts in Transactional Memories" (Dragojević, Singh,
// Guerraoui, Singh; PODC 2009): the Shrink prediction-based transaction
// scheduler, two word-based STM engines (SwissTM-like and TinySTM-like) it
// attaches to, the baseline schedulers and contention managers it is
// evaluated against, the benchmarks of the paper's evaluation (STMBench7,
// ten STAMP kernels, a red-black tree microbenchmark), and a simulator for
// the paper's scheduling theory (Theorems 1-3).
//
// The implementation lives under internal/; the runnable entry points are
// the commands under cmd/ (one per figure family), the examples under
// examples/, and the per-figure benchmarks in bench_test.go. See README.md
// for a map and EXPERIMENTS.md for measured-versus-paper results.
//
// Transactional state is held in typed variables (stm.TVar[T], read and
// written with stm.ReadT/stm.WriteT), which move values through the
// engines unboxed: an uncontended typed read allocates nothing. The
// untyped stm.Var API remains as a compatibility shim for code that does
// not know its value types statically.
//
// The serving subsystem internal/tkv layers a sharded transactional
// key-value store over the substrate: N shards, each with its own engine
// instance, scheduler (per-shard Shrink by default) and wait policy,
// single-key fast paths, batched multi-key reads (MGet), cross-shard
// atomic batches, and serializable (per-shard-atomic) snapshots. Batch
// admission is key-granular: each shard carries a striped key-lock table
// (internal/keylock), a batch determines its key set up front and holds
// exactly those stripes — exclusively, in one global (shard, stripe)
// order — across a plan phase (read-only transactions, writes into an
// overlay) and an apply phase (one update transaction per shard). Batches
// over disjoint key sets commit concurrently even within a shard, per-key
// exclusion makes cas safe inside batches (a failed compare aborts the
// whole batch before any write), single-key traffic takes only its own
// key's stripe in shared mode, and snapshots freeze each table's
// exclusive-session gate in O(1) instead of walking stripes. cmd/tkvd
// serves it over HTTP/JSON and cmd/tkvload drives it open-loop with
// configurable skew, read ratio, mget and batch mix, cas-in-batch
// fraction and batch key overlap while verifying the zero-lost-update
// invariant — the paper's "many threads hammering shared state" regime
// as a live server rather than a closed-loop benchmark.
//
// The serving edge itself is internal/tkvwire: a length-prefixed binary
// wire protocol (fixed 16-byte little-endian headers, fixed-width
// payloads, a 1 MiB request frame limit enforced before any allocation)
// over persistent pipelined TCP connections, with a reader/writer
// goroutine pair per connection, pooled size-classed frame buffers and
// zero-copy parses making the server's get/put path allocation-free in
// steady state. Single-key responses stay in request order; multi-key
// ops complete out of order, matched by an echoed request id, and the
// bundled client multiplexes concurrent callers over one connection
// with coalesced flushes. tkvd serves it on -tcpaddr next to HTTP
// (which remains the debug surface); against the HTTP/JSON stack's
// ~50 µs per op of transport overhead, the binary edge is roughly 6×
// the throughput on the same store and host, with an unpipelined
// latency floor in the tens of microseconds.
//
// tkvd processes form a replicated group. A primary captures every
// committed write set — under the same key-lock stripes, after STM
// commit but before stripe release, so ring order equals commit order
// per key — as an internal/tkvlog record: length-prefixed, versioned,
// CRC32-C-sealed, allocation-free to encode, with torn tails (ErrShort)
// distinguished from corruption (ErrCorrupt); the same record is the
// planned on-disk WAL format. Per-shard bounded rings decouple commits
// from the network, a per-subscription shipper on the wire port (behind
// a version/feature handshake that leaves old clients untouched)
// replays backlog and tails live commits, and a wrapped ring degrades
// to a consistent per-shard snapshot cut instead of a lost follower.
// The follower side (internal/tkvrepl) replays the stream through the
// same stripe-exclusive commit path, serves stale-bounded reads
// (writes bounce with "not primary"), reports lag watermarks in /stats,
// and promotes to a writable primary on POST /promote. Graceful
// shutdown fences writes and drains the stream through a flush barrier
// before closing listeners, so planned failover loses no acknowledged
// write (cmd/tkvload -scenario failover drills exactly that); a hard
// kill loses at most the reported lag.
//
// The transaction lifecycle is shared between the engines (stm.Core) and
// allocation-free in steady state under any scheduler: write-set lookups
// go through an inline index (stm.WriteIndex) instead of a map, and
// scheduler hooks observe the write set as a zero-copy stm.WriteSet view
// over the engine's live write log. A committed update transaction costs
// at most the one heap cell per spilled value, and exactly zero
// allocations when writing existing pointers — even with Shrink attached.
//
// Read-only transactions have a dedicated snapshot mode
// (Thread.AtomicallyRO with stm.ReadTRO, the TL2/LSA-style read-only
// path): the body runs against a snapshot timestamp fixed at begin, every
// read validates inline (unlocked and version at most the snapshot), and
// there is no read log, no commit-phase work and no atomic
// read-modify-write on the global clock — a read that meets a newer
// version restarts the body on a fresh snapshot. The mode cannot be used
// by transactions that write: a write inside AtomicallyRO fails with
// stm.ErrReadOnlyWrite without retry, and the caller reruns under the
// update path (there is no transparent promotion — without a read log the
// preceding reads cannot be revalidated). The stmds structures expose RO
// read variants, and tkv serves Get, MGet, batch plan phases and all
// snapshot reads through this mode. The single- and multi-key read path
// (Get/MGet) is additionally adaptive: after a streak of RO restarts on a
// shard (a write-heavy antagonist repeatedly committing past the
// snapshot), the next read on that shard runs once on the logging update
// path, whose read log and timestamp extension absorb concurrent commits
// instead of restarting. (Batch plans and snapshots always stay RO: they
// run under stripe exclusion or the freeze gate, which bounds what can
// restart them.)
package shrink

// Version identifies the reproduction release.
const Version = "1.0.0"
