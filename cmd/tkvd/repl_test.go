package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// daemon is one in-process tkvd instance driven through run().
type daemon struct {
	out   bytes.Buffer
	stop  chan struct{}
	done  chan error
	addr  string // HTTP
	wire  string // binary protocol
	ended bool
}

func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	d := &daemon{stop: make(chan struct{}), done: make(chan error, 1)}
	ready := make(chan string, 2)
	args := append([]string{"-addr", "127.0.0.1:0", "-tcpaddr", "127.0.0.1:0",
		"-shards", "2", "-pool", "2", "-buckets", "128"}, extra...)
	go func() { d.done <- run(args, &d.out, ready, d.stop) }()
	for i, dst := range []*string{&d.addr, &d.wire} {
		select {
		case *dst = <-ready:
		case err := <-d.done:
			t.Fatalf("daemon exited before ready (%d): %v\n%s", i, err, d.out.String())
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
	}
	t.Cleanup(func() { d.shutdown(t) })
	return d
}

func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	if d.ended {
		return
	}
	d.ended = true
	close(d.stop)
	select {
	case err := <-d.done:
		if err != nil {
			t.Errorf("shutdown: %v\n%s", err, d.out.String())
		}
	case <-time.After(15 * time.Second):
		t.Error("daemon never shut down")
	}
}

func httpPut(t *testing.T, base string, key int, val string) int {
	t.Helper()
	req, err := http.NewRequest("PUT", fmt.Sprintf("%s/kv/%d", base, key),
		strings.NewReader(fmt.Sprintf(`{"value":%q}`, val)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func httpGet(t *testing.T, base string, key int) (string, int) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/kv/%d", base, key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Value string `json:"value"`
	}
	json.NewDecoder(resp.Body).Decode(&got)
	return got.Value, resp.StatusCode
}

func httpPost(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestPrimaryFollowerFailover is the full daemon-level drill: a primary
// and a follower, writes landing on the primary and appearing on the
// follower, follower writes bouncing 421, graceful primary shutdown, and
// a promote that turns the follower into a writable primary holding every
// acknowledged write.
func TestPrimaryFollowerFailover(t *testing.T) {
	primary := startDaemon(t)
	follower := startDaemon(t, "-role", "follower", "-follow", primary.wire)

	pbase, fbase := "http://"+primary.addr, "http://"+follower.addr

	for i := 0; i < 50; i++ {
		if code := httpPut(t, pbase, i, fmt.Sprintf("v%d", i)); code != 200 {
			t.Fatalf("primary put %d = %d", i, code)
		}
	}

	// Follower writes bounce with 421 Misdirected Request.
	if code := httpPut(t, fbase, 999, "nope"); code != http.StatusMisdirectedRequest {
		t.Fatalf("follower put = %d, want 421", code)
	}

	// Follower reads converge to the primary's state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, code := httpGet(t, fbase, 49)
		if code == 200 && v == "v49" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: key 49 = %q (%d)", v, code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /stats on the follower names its role.
	resp, err := http.Get(fbase + "/stats?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Repl *struct {
			Role string `json:"role"`
		} `json:"repl"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Repl == nil || stats.Repl.Role != "follower" {
		t.Fatalf("follower /stats repl = %+v", stats.Repl)
	}

	// Graceful failover: quit the primary (drains the stream), promote
	// the follower, and verify every acknowledged write survived.
	if code := httpPost(t, pbase+"/quit"); code != 200 {
		t.Fatalf("quit = %d", code)
	}
	select {
	case err := <-primary.done:
		primary.ended = true
		if err != nil {
			t.Fatalf("primary shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("primary never exited after /quit")
	}
	if code := httpPost(t, fbase+"/promote"); code != 200 {
		t.Fatalf("promote = %d", code)
	}
	for i := 0; i < 50; i++ {
		if v, code := httpGet(t, fbase, i); code != 200 || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("lost write: key %d = %q (%d) after failover", i, v, code)
		}
	}
	// The promoted follower serves writes.
	if code := httpPut(t, fbase, 1000, "after-failover"); code != 200 {
		t.Fatalf("promoted put = %d", code)
	}
	if !strings.Contains(follower.out.String(), "promoted to primary") {
		t.Fatalf("missing promote log:\n%s", follower.out.String())
	}
}

func TestRunRejectsBadReplFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-role", "follower", "-addr", "127.0.0.1:0"}, &out, nil, nil); err == nil {
		t.Fatal("follower without -follow accepted")
	}
	if err := run([]string{"-role", "follower", "-follow", "x", "-replring", "0",
		"-addr", "127.0.0.1:0"}, &out, nil, nil); err == nil {
		t.Fatal("follower without a ring accepted")
	}
	if err := run([]string{"-role", "bogus", "-addr", "127.0.0.1:0"}, &out, nil, nil); err == nil {
		t.Fatal("bogus role accepted")
	}
	if err := run([]string{"-follow", "somewhere", "-addr", "127.0.0.1:0"}, &out, nil, nil); err == nil {
		t.Fatal("-follow on a primary accepted")
	}
}
