// Command tkvd serves the tkv sharded transactional key-value store over
// HTTP/JSON: single-key get/put/delete/cas/add fast paths, cross-shard
// atomic batches (including cas ops) admitted per key through striped
// key locks, batched multi-key reads (/mget), consistent snapshots and a
// /stats endpoint rendering the per-shard engine counters (commits, aborts,
// Shrink serializations, stripe waits, read-only fallbacks) through the
// internal/report table machinery. Each shard runs its own STM
// engine instance with its own scheduler, so this is the serving scenario
// the paper's thesis is about: prediction-based scheduling keeping
// throughput stable while many client connections hammer shared state.
//
// Alongside HTTP, tkvd serves the binary wire protocol (internal/tkvwire)
// on -tcpaddr: persistent pipelined connections with a zero-allocation
// get/put serving path. The binary port is the fast serving edge; HTTP
// stays up as the debug and tooling surface.
//
// Usage:
//
//	tkvd -addr 127.0.0.1:7070 -tcpaddr 127.0.0.1:7071 -shards 8 -sched shrink -stm swiss
//	tkvd -stm tiny -wait busy -sched none -tcpaddr ""
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests and printing the final shard statistics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/tkv"
	"github.com/shrink-tm/shrink/internal/tkvwire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tkvd:", err)
		os.Exit(1)
	}
}

// run starts the servers and blocks until a termination signal (or a close
// of the test-only stop channel) triggers the graceful shutdown. When ready
// is non-nil the bound HTTP address is sent on it once the listener is up,
// followed by the binary-protocol address when -tcpaddr is enabled.
func run(args []string, out io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("tkvd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7070", "HTTP listen address (debug surface)")
		tcpaddr = fs.String("tcpaddr", "127.0.0.1:7071",
			"binary wire protocol listen address (empty disables it)")
		shards  = fs.Int("shards", 8, "shard count (rounded up to a power of two)")
		pool    = fs.Int("pool", 4, "STM worker threads per shard")
		buckets = fs.Int("buckets", 512, "hash buckets per shard")
		stripes = fs.Int("stripes", 0,
			"key-lock stripes per shard, rounded up to a power of two (0 = default)")
		schedName = fs.String("sched", enginecfg.SchedShrink,
			"per-shard scheduler: none, shrink, ats, pool or adaptive")
		admitDefaults = tkv.DefaultAdmitConfig()
		admit         = fs.Bool("admit", false,
			"enable the contention-aware admission layer (overload shedding, "+
				"wound-wait batch admission, adaptive stripes, predictor routing)")
		shedKnee = fs.Float64("shedknee", admitDefaults.ShedKnee,
			"overload score past which writes shed (<= 0: drill mode, always past the knee)")
		shedMax = fs.Float64("shedmax", admitDefaults.ShedMax,
			"shed probability ceiling in (0,1]")
		largeBatch = fs.Int("largebatch", admitDefaults.LargeBatchStripes,
			"stripe count at which a cross-shard batch queues for wound-wait admission")
		admitTick = fs.Duration("admittick", admitDefaults.Tick,
			"admission controller tick")
	)
	ef := enginecfg.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wait, err := ef.WaitPolicy()
	if err != nil {
		return err
	}
	var admission *tkv.AdmitConfig
	if *admit {
		ac := admitDefaults
		ac.ShedKnee = *shedKnee
		ac.ShedMax = *shedMax
		ac.LargeBatchStripes = *largeBatch
		ac.Tick = *admitTick
		admission = &ac
	}
	store, err := tkv.Open(tkv.Config{
		Shards:      *shards,
		PoolSize:    *pool,
		Buckets:     *buckets,
		LockStripes: *stripes,
		Engine:      ef.Engine(),
		Scheduler:   *schedName,
		Wait:        wait,
		Admission:   admission,
	})
	if err != nil {
		return err
	}
	defer store.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	admitLabel := "off"
	if admission != nil {
		admitLabel = fmt.Sprintf("knee=%g max=%g", admission.ShedKnee, admission.ShedMax)
	}
	fmt.Fprintf(out, "tkvd: serving on %s (%d shards, engine=%s, sched=%s, wait=%s, admit=%s)\n",
		ln.Addr(), store.NumShards(), ef.Engine(), *schedName, ef.WaitLabel(), admitLabel)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{Handler: tkv.NewHandler(store)}
	errc := make(chan error, 2)
	go func() { errc <- srv.Serve(ln) }()

	var wsrv *tkvwire.Server
	if *tcpaddr != "" {
		wln, err := net.Listen("tcp", *tcpaddr)
		if err != nil {
			srv.Close()
			return err
		}
		fmt.Fprintf(out, "tkvd: wire protocol on %s\n", wln.Addr())
		if ready != nil {
			ready <- wln.Addr().String()
		}
		wsrv = tkvwire.NewServer(store)
		go func() {
			if err := wsrv.Serve(wln); err != tkvwire.ErrServerClosed {
				errc <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(out, "tkvd: %v, shutting down\n", s)
	case <-stop:
		fmt.Fprintln(out, "tkvd: stop requested, shutting down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if wsrv != nil {
		if err := wsrv.Close(); err != nil {
			return err
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	stats := store.Stats()
	fmt.Fprintf(out, "tkvd: drained; commits=%d aborts=%d serializations=%d shed=%d routed=%d ops: %+v\n",
		stats.Commits, stats.Aborts, stats.Serializations, stats.Shed, stats.Routed, stats.Ops)
	return nil
}
