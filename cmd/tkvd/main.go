// Command tkvd serves the tkv sharded transactional key-value store over
// HTTP/JSON: single-key get/put/delete/cas/add fast paths, cross-shard
// atomic batches (including cas ops) admitted per key through striped
// key locks, batched multi-key reads (/mget), consistent snapshots and a
// /stats endpoint rendering the per-shard engine counters (commits, aborts,
// Shrink serializations, stripe waits, read-only fallbacks) through the
// internal/report table machinery. Each shard runs its own STM
// engine instance with its own scheduler, so this is the serving scenario
// the paper's thesis is about: prediction-based scheduling keeping
// throughput stable while many client connections hammer shared state.
//
// Alongside HTTP, tkvd serves the binary wire protocol (internal/tkvwire)
// on -tcpaddr: persistent pipelined connections with a zero-allocation
// get/put serving path. The binary port is the fast serving edge; HTTP
// stays up as the debug and tooling surface.
//
// tkvd replicates. A primary streams every committed write set
// (internal/tkvlog records) to followers over the wire port; a follower
// (-role follower -follow primary:port) replays the stream into its own
// store, serves stale-bounded reads, bounces writes with 421, and can be
// promoted to primary at any time with POST /promote. Graceful shutdown
// fences writes and drains the replication stream first, so a drained
// follower is exactly up to date — the kill-and-recover drill in
// tkvload -scenario failover loses nothing.
//
// tkvd persists. With -wal <dir> every committed write set is appended to
// a write-ahead log and acknowledged only once its group-commit fsync
// completes; on start the directory is recovered (checkpoints, then log
// tails, truncating a torn tail) before serving, and -walckpt snapshots
// and truncates the logs periodically. The layout is -walmode: "shared"
// (the default) interleaves every shard into one lane file so the whole
// store shares one fsync per commit group — on one device, N shards' worth
// of fsyncs collapse into one; "pershard" keeps one log per shard for
// deployments that give shards independent media. A write or fsync error
// fail-stops the process — exit nonzero, no ack the disk might have lost
// — and tkvload -scenario crash is the SIGKILL drill proving acknowledged
// writes survive.
//
// Usage:
//
//	tkvd -addr 127.0.0.1:7070 -tcpaddr 127.0.0.1:7071 -shards 8 -sched shrink -stm swiss
//	tkvd -role follower -follow 127.0.0.1:7071 -addr 127.0.0.1:7072 -tcpaddr 127.0.0.1:7073
//	tkvd -wal /var/lib/tkvd/wal -walckpt 30s
//	tkvd -stm tiny -wait busy -sched none -tcpaddr "" -replring 0
//
// The server shuts down gracefully on SIGINT/SIGTERM or POST /quit,
// draining in-flight requests and the replication stream, then printing
// the final shard statistics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/tkv"
	"github.com/shrink-tm/shrink/internal/tkvrepl"
	"github.com/shrink-tm/shrink/internal/tkvwal"
	"github.com/shrink-tm/shrink/internal/tkvwire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tkvd:", err)
		os.Exit(1)
	}
}

// run starts the servers and blocks until a termination signal (or a close
// of the test-only stop channel, or POST /quit) triggers the graceful
// shutdown. When ready is non-nil the bound HTTP address is sent on it once
// the listener is up, followed by the binary-protocol address when -tcpaddr
// is enabled.
func run(args []string, out io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("tkvd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7070", "HTTP listen address (debug surface)")
		tcpaddr = fs.String("tcpaddr", "127.0.0.1:7071",
			"binary wire protocol listen address (empty disables it)")
		shards  = fs.Int("shards", 8, "shard count (rounded up to a power of two)")
		pool    = fs.Int("pool", 4, "STM worker threads per shard")
		buckets = fs.Int("buckets", 512, "hash buckets per shard")
		stripes = fs.Int("stripes", 0,
			"key-lock stripes per shard, rounded up to a power of two (0 = default)")
		schedName = fs.String("sched", enginecfg.SchedShrink,
			"per-shard scheduler: none, shrink, ats, pool or adaptive")
		role = fs.String("role", "primary",
			"replication role: primary (serves writes, streams to followers) or "+
				"follower (replays a primary, serves reads, POST /promote to take over)")
		follow = fs.String("follow", "",
			"primary's wire address to replicate from (required with -role follower)")
		replring = fs.Int("replring", 1024,
			"replicated write sets retained per shard for follower catch-up "+
				"(0 disables replication entirely)")
		waldir = fs.String("wal", "",
			"write-ahead log directory: writes are acknowledged only once "+
				"fsync-durable and the directory is recovered on start "+
				"(empty disables durability)")
		walAsync = fs.Bool("walasync", false,
			"do not park acks on fsync (async WAL): faster, but a crash can "+
				"lose the un-synced tail")
		walCkpt = fs.Duration("walckpt", 0,
			"WAL checkpoint interval: snapshot each shard and truncate its "+
				"log (0 disables periodic checkpoints)")
		walMode = fs.String("walmode", string(tkvwal.ModeShared),
			"WAL layout: shared (one lane file, one fsync covers every "+
				"shard's commit group) or pershard (one log per shard, for "+
				"independent media)")
		admitDefaults = tkv.DefaultAdmitConfig()
		admit         = fs.Bool("admit", false,
			"enable the contention-aware admission layer (overload shedding, "+
				"wound-wait batch admission, adaptive stripes, predictor routing)")
		shedKnee = fs.Float64("shedknee", admitDefaults.ShedKnee,
			"overload score past which writes shed (<= 0: drill mode, always past the knee)")
		shedMax = fs.Float64("shedmax", admitDefaults.ShedMax,
			"shed probability ceiling in (0,1]")
		largeBatch = fs.Int("largebatch", admitDefaults.LargeBatchStripes,
			"stripe count at which a cross-shard batch queues for wound-wait admission")
		admitTick = fs.Duration("admittick", admitDefaults.Tick,
			"admission controller tick")
	)
	ef := enginecfg.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wait, err := ef.WaitPolicy()
	if err != nil {
		return err
	}
	switch *role {
	case "primary":
		if *follow != "" {
			return fmt.Errorf("-follow is only meaningful with -role follower")
		}
	case "follower":
		if *follow == "" {
			return fmt.Errorf("-role follower requires -follow (the primary's wire address)")
		}
		if *replring <= 0 {
			return fmt.Errorf("-role follower requires a replication ring (-replring > 0)")
		}
	default:
		return fmt.Errorf("unknown -role %q (primary or follower)", *role)
	}
	var admission *tkv.AdmitConfig
	if *admit {
		ac := admitDefaults
		ac.ShedKnee = *shedKnee
		ac.ShedMax = *shedMax
		ac.LargeBatchStripes = *largeBatch
		ac.Tick = *admitTick
		admission = &ac
	}
	var wopts *tkvwal.Options
	if *waldir != "" {
		switch tkvwal.Mode(*walMode) {
		case tkvwal.ModeShared, tkvwal.ModePerShard:
		default:
			return fmt.Errorf("unknown -walmode %q (shared or pershard)", *walMode)
		}
		wopts = &tkvwal.Options{
			Dir:             *waldir,
			NoSync:          *walAsync,
			CheckpointEvery: *walCkpt,
			Mode:            tkvwal.Mode(*walMode),
		}
	}
	store, err := tkv.Open(tkv.Config{
		Shards:      *shards,
		PoolSize:    *pool,
		Buckets:     *buckets,
		LockStripes: *stripes,
		Engine:      ef.Engine(),
		Scheduler:   *schedName,
		Wait:        wait,
		Admission:   admission,
		ReplRing:    *replring,
		WAL:         wopts,
	})
	if err != nil {
		return err
	}
	defer store.Close()
	if ws := store.Stats().Wal; ws != nil {
		r := ws.Recovery
		fmt.Fprintf(out, "tkvd: wal %s recovered: mode=%s ckpt_entries=%d replayed=%d skipped=%d truncated_bytes=%d segments=%d sync=%v\n",
			*waldir, ws.Mode, r.CheckpointEntries, r.Replayed, r.Skipped, r.TruncatedBytes, r.Segments, ws.Sync)
	}
	if *role == "follower" {
		store.SetReadOnly(true)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	admitLabel := "off"
	if admission != nil {
		admitLabel = fmt.Sprintf("knee=%g max=%g", admission.ShedKnee, admission.ShedMax)
	}
	fmt.Fprintf(out, "tkvd: serving on %s (%d shards, engine=%s, sched=%s, wait=%s, admit=%s, role=%s)\n",
		ln.Addr(), store.NumShards(), ef.Engine(), *schedName, ef.WaitLabel(), admitLabel, *role)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// The operator surface wraps the KV handler: /promote turns a
	// follower into a writable primary (stopping its applier), /quit is
	// the remote form of SIGTERM — both POST-only.
	quitc := make(chan struct{})
	var quitOnce sync.Once
	var replMu sync.Mutex // guards follower handoff during promote
	var follower *tkvrepl.Follower
	mux := http.NewServeMux()
	mux.Handle("/", tkv.NewHandler(store))
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		replMu.Lock()
		if follower != nil {
			follower.Stop()
			follower = nil
		}
		store.SetReadOnly(false)
		replMu.Unlock()
		fmt.Fprintf(out, "tkvd: promoted to primary\n")
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"role":"primary"}`)
	})
	mux.HandleFunc("/quit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		quitOnce.Do(func() { close(quitc) })
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "shutting down")
	})

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 2)
	go func() { errc <- srv.Serve(ln) }()

	var wsrv *tkvwire.Server
	if *tcpaddr != "" {
		wln, err := net.Listen("tcp", *tcpaddr)
		if err != nil {
			srv.Close()
			return err
		}
		fmt.Fprintf(out, "tkvd: wire protocol on %s\n", wln.Addr())
		if ready != nil {
			ready <- wln.Addr().String()
		}
		wsrv = tkvwire.NewServer(store)
		go func() {
			if err := wsrv.Serve(wln); err != tkvwire.ErrServerClosed {
				errc <- err
			}
		}()
	}

	if *role == "follower" {
		f, err := tkvrepl.Start(store, *follow)
		if err != nil {
			srv.Close()
			if wsrv != nil {
				wsrv.Close()
			}
			return err
		}
		replMu.Lock()
		follower = f
		replMu.Unlock()
		fmt.Fprintf(out, "tkvd: following %s\n", *follow)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errc:
		return err
	case <-store.WalFailed():
		// Fail-stop: the log is fenced, no further ack can be honored, and
		// a graceful drain would only pretend otherwise. Exit nonzero at
		// once; the supervisor restarts us into recovery. (A nil channel
		// — no WAL — never fires.)
		return fmt.Errorf("wal failed (fail-stop): %w", store.WalErr())
	case s := <-sig:
		fmt.Fprintf(out, "tkvd: %v, shutting down\n", s)
	case <-quitc:
		fmt.Fprintln(out, "tkvd: quit requested, shutting down")
	case <-stop:
		fmt.Fprintln(out, "tkvd: stop requested, shutting down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A stopping follower just detaches; a stopping primary fences writes
	// and drains its streams first, so every acknowledged write reaches
	// the followers before the sockets close — the zero-loss half of the
	// failover contract.
	replMu.Lock()
	if follower != nil {
		follower.Stop()
		follower = nil
	}
	replMu.Unlock()
	// The drain fence below flips the store read-only, which would make
	// the final stats line claim "follower"; report the role served.
	finalRole := "primary"
	if store.ReadOnly() {
		finalRole = "follower"
	}
	if store.Repl() != nil && wsrv != nil && !store.ReadOnly() {
		store.SetReadOnly(true)
		if !wsrv.DrainRepl(3 * time.Second) {
			fmt.Fprintln(out, "tkvd: replication drain timed out; followers must resync")
		}
	}
	if wsrv != nil {
		if err := wsrv.Close(); err != nil {
			return err
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	stats := store.Stats()
	replLabel := ""
	if r := stats.Repl; r != nil {
		replLabel = fmt.Sprintf(" repl: role=%s lag=%d applied=%d overflows=%d resyncs=%d",
			finalRole, r.Lag, r.AppliedRecs, r.Overflows, r.Resyncs)
	}
	walLabel := ""
	if w := stats.Wal; w != nil {
		walLabel = fmt.Sprintf(" wal: mode=%s appends=%d fsyncs=%d group_mean=%.1f group_max=%d fsync_p99=%dµs bytes=%d pending_peak=%d ckpts=%d",
			w.Mode, w.Appends, w.Fsyncs, w.GroupMean, w.GroupMax, w.FsyncP99us, w.BytesAppended, w.PendingPeakBytes, w.Checkpoints)
	}
	fmt.Fprintf(out, "tkvd: drained; commits=%d aborts=%d serializations=%d shed=%d routed=%d ops: %+v%s%s\n",
		stats.Commits, stats.Aborts, stats.Serializations, stats.Shed, stats.Routed, stats.Ops, replLabel, walLabel)
	return nil
}
