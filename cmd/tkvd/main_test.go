package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeAndShutdown(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shards", "2", "-pool", "2"},
			&out, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	body := strings.NewReader(`{"value":"hello"}`)
	req, err := http.NewRequest("PUT", base+"/kv/5", body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/kv/5")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Value string `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Value != "hello" {
		t.Fatalf("GET = %+v", got)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("missing shutdown stats:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sched", "bogus", "-addr", "127.0.0.1:0"}, &out, nil, nil); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
	if err := run([]string{"-wait", "bogus"}, &out, nil, nil); err == nil {
		t.Fatal("bogus wait policy accepted")
	}
	if err := run([]string{"-stm", "bogus", "-addr", "127.0.0.1:0"}, &out, nil, nil); err == nil {
		t.Fatal("bogus engine accepted")
	}
}
