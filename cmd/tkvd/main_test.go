package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/shrink-tm/shrink/internal/tkvwire"
)

func TestServeAndShutdown(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 2)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-tcpaddr", "127.0.0.1:0",
			"-shards", "2", "-pool", "2"}, &out, ready, stop)
	}()
	var addr, tcpAddr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	select {
	case tcpAddr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("wire server never became ready")
	}
	base := "http://" + addr

	body := strings.NewReader(`{"value":"hello"}`)
	req, err := http.NewRequest("PUT", base+"/kv/5", body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/kv/5")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Value string `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Value != "hello" {
		t.Fatalf("GET = %+v", got)
	}

	// The binary port serves the same store: data written over HTTP is
	// visible over the wire protocol and vice versa.
	wc, err := tkvwire.Dial(tcpAddr)
	if err != nil {
		t.Fatalf("wire dial: %v", err)
	}
	defer wc.Close()
	if val, found, err := wc.Get(5); err != nil || !found || val != "hello" {
		t.Fatalf("wire get: %q %v %v", val, found, err)
	}
	if _, err := wc.Put(6, "from-the-wire"); err != nil {
		t.Fatalf("wire put: %v", err)
	}
	resp, err = http.Get(base + "/kv/6")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Value != "from-the-wire" {
		t.Fatalf("HTTP view of wire put = %+v", got)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("missing shutdown stats:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sched", "bogus", "-addr", "127.0.0.1:0"}, &out, nil, nil); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
	if err := run([]string{"-wait", "bogus"}, &out, nil, nil); err == nil {
		t.Fatal("bogus wait policy accepted")
	}
	if err := run([]string{"-stm", "bogus", "-addr", "127.0.0.1:0"}, &out, nil, nil); err == nil {
		t.Fatal("bogus engine accepted")
	}
}
