package main

import "testing"

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-updates", "20", "-range", "256", "-threads", "2", "-dur", "15ms"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-threads", "0"}); err == nil {
		t.Fatal("zero threads accepted")
	}
}
