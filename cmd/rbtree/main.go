// Command rbtree regenerates the paper's red-black tree microbenchmark
// figures: Figure 7 (SwissTM: base vs Shrink vs ATS) and Figure 11
// (TinySTM: base vs Shrink), at 20% and 70% update rates over an integer
// range of 16384.
//
// Usage:
//
//	rbtree -stm swiss -updates 20
//	rbtree -stm tiny -updates 70 -threads 1,4,8,12,24
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/harness"
	"github.com/shrink-tm/shrink/internal/microbench"
	"github.com/shrink-tm/shrink/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rbtree:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rbtree", flag.ContinueOnError)
	ef := enginecfg.AddFlags(fs)
	var (
		updates = fs.Int("updates", 0, "update percentage: 20, 70, or 0 for both")
		keys    = fs.Int("range", 16384, "integer set key range")
		threads = fs.String("threads", "", "thread counts (default: paper's 1..24)")
		dur     = fs.Duration("dur", 200*time.Millisecond, "measurement duration per cell")
		cores   = fs.Int("cores", 8, "emulated core count (GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of text tables")
		reps    = fs.Int("reps", 1, "runs per cell; the median is reported")
		ro      = fs.Bool("ro", false, "run lookups as read-only snapshot transactions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine := ef.Engine()
	wait, err := ef.WaitPolicy()
	if err != nil {
		return err
	}

	counts := harness.PaperThreadCounts()
	if *threads != "" {
		counts = counts[:0]
		for _, p := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad thread count %q", p)
			}
			counts = append(counts, n)
		}
	}
	rates := []int{20, 70}
	if *updates != 0 {
		rates = []int{*updates}
	}
	schedulers := []string{harness.SchedNone, harness.SchedShrink, harness.SchedATS}
	if engine == harness.EngineTiny {
		schedulers = []string{harness.SchedNone, harness.SchedShrink}
	}

	for _, rate := range rates {
		title := fmt.Sprintf("Red-black tree, %d%% updates, range %d, on %s (%s waiting)", rate, *keys, engine, ef.WaitLabel())
		if *ro {
			title += " [read-only lookups]"
		}
		table := report.NewTable(title, "threads", "committed tx/s")
		for _, scheduler := range schedulers {
			name := engine
			if scheduler != harness.SchedNone {
				name = scheduler + "-" + engine
			}
			for _, n := range counts {
				res, err := harness.RunMedian(harness.Config{
					Engine:    engine,
					Scheduler: scheduler,
					Wait:      wait,
					Threads:   n,
					Duration:  *dur,
					Cores:     *cores,
					Seed:      1,
				}, *reps, func() harness.Workload {
					w := microbench.NewRBTree(*keys, rate)
					w.ROLookups = *ro
					return w
				})
				if err != nil {
					return err
				}
				table.Add(name, n, res.Throughput)
			}
		}
		if *csv {
			table.WriteCSV(os.Stdout)
			fmt.Println()
		} else {
			table.WriteText(os.Stdout)
		}
	}
	return nil
}
