package main

import "testing"

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-mix", "r", "-threads", "2", "-dur", "15ms"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-threads", "junk"}); err == nil {
		t.Fatal("junk threads accepted")
	}
	if err := run([]string{"-mix", "bogus"}); err == nil {
		t.Fatal("bogus mix accepted")
	}
}
