// Command predacc regenerates Figure 3: the accuracy of Shrink's read-set
// and write-set predictions on STMBench7, per workload mix, across thread
// counts, measured inside a live Shrink-SwissTM run.
//
// Usage:
//
//	predacc
//	predacc -mix w -threads 2,8,24 -dur 300ms -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/shrink-tm/shrink/internal/bench7"
	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/harness"
	"github.com/shrink-tm/shrink/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "predacc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("predacc", flag.ContinueOnError)
	ef := enginecfg.AddFlags(fs)
	var (
		mixName = fs.String("mix", "all", "workload mix: r, rw, w, or all")
		threads = fs.String("threads", "2,3,4,6,8,10,12,16,20,24", "thread counts")
		dur     = fs.Duration("dur", 200*time.Millisecond, "measurement duration per cell")
		cores   = fs.Int("cores", 8, "emulated core count (GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of text tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wait, err := ef.WaitPolicy()
	if err != nil {
		return err
	}
	var counts []int
	for _, p := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad thread count %q", p)
		}
		counts = append(counts, n)
	}
	mixes := []bench7.Mix{bench7.ReadDominated, bench7.ReadWrite, bench7.WriteDominated}
	if *mixName != "all" {
		m, err := bench7.ParseMix(*mixName)
		if err != nil {
			return err
		}
		mixes = []bench7.Mix{m}
	}

	readTable := report.NewTable("Read set prediction accuracy on STMBench7 (%)", "threads", "accuracy %")
	writeTable := report.NewTable("Write set prediction accuracy on STMBench7 (%)", "threads", "accuracy %")
	for _, mix := range mixes {
		for _, n := range counts {
			res, err := harness.Run(harness.Config{
				Engine:        ef.Engine(),
				Scheduler:     harness.SchedShrink,
				Wait:          wait,
				Threads:       n,
				Duration:      *dur,
				Cores:         *cores,
				Seed:          1,
				TrackAccuracy: true,
			}, func() harness.Workload {
				return bench7.NewWorkload(mix, bench7.Params{})
			})
			if err != nil {
				return err
			}
			readTable.Add(mix.String(), n, res.ReadAccuracy*100)
			writeTable.Add(mix.String(), n, res.WriteAccuracy*100)
		}
	}
	if *csv {
		readTable.WriteCSV(os.Stdout)
		fmt.Println()
		writeTable.WriteCSV(os.Stdout)
	} else {
		readTable.WriteText(os.Stdout)
		writeTable.WriteText(os.Stdout)
	}
	return nil
}
