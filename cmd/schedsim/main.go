// Command schedsim regenerates the theory results of Section 2: it runs
// the Serializer, ATS, Restart, Inaccurate and pending-commit Greedy
// schedulers on the instance families behind Theorems 1-3 and prints
// makespans against the offline optimum, showing the competitive ratios
// (O(n) for Serializer/ATS/Inaccurate, <= 2 for Restart).
//
// Usage:
//
//	schedsim
//	schedsim -sizes 8,16,32,64 -k 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/shrink-tm/shrink/internal/schedsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("schedsim", flag.ContinueOnError)
	var (
		sizes = fs.String("sizes", "8,16,32,64", "instance sizes n")
		k     = fs.Int("k", 4, "ATS queueing threshold k")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ns []int
	for _, p := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 3 {
			return fmt.Errorf("bad size %q (need >= 3)", p)
		}
		ns = append(ns, n)
	}

	fmt.Println("Theory suite: competitive ratios on the paper's instance families")
	fmt.Println("(Theorem 1: Serializer & ATS are O(n)-competitive;")
	fmt.Println(" Theorem 2: Restart is 2-competitive;")
	fmt.Println(" Theorem 3: Inaccurate prediction degrades Restart to O(n))")
	fmt.Println()
	rows := schedsim.RunTheoremSuite(ns, *k)
	scenario := ""
	for _, r := range rows {
		if r.Scenario != scenario {
			if scenario != "" {
				fmt.Println()
			}
			scenario = r.Scenario
		}
		fmt.Println(r.String())
	}
	return nil
}
