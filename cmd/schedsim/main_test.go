package main

import "testing"

func TestRunDefaultSizes(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadSizes(t *testing.T) {
	if err := run([]string{"-sizes", "2"}); err == nil {
		t.Fatal("size below 3 accepted")
	}
	if err := run([]string{"-sizes", "x"}); err == nil {
		t.Fatal("junk size accepted")
	}
}
