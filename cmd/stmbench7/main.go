// Command stmbench7 regenerates the paper's STMBench7 throughput figures:
// Figure 5 (SwissTM, preemptive waiting, base vs Pool vs Shrink vs ATS),
// Figure 8 (TinySTM, base vs Shrink) and Figure 9 (SwissTM, busy waiting),
// as committed-transactions-per-second series over thread counts.
//
// Usage:
//
//	stmbench7 -stm swiss -wait preemptive -mix all -dur 300ms
//	stmbench7 -stm tiny -mix w -threads 1,4,8,16,24 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/shrink-tm/shrink/internal/bench7"
	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/harness"
	"github.com/shrink-tm/shrink/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench7:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stmbench7", flag.ContinueOnError)
	ef := enginecfg.AddFlags(fs)
	var (
		mixName   = fs.String("mix", "all", "workload mix: r, rw, w, or all")
		threads   = fs.String("threads", "", "comma-separated thread counts (default: paper's 1..24)")
		dur       = fs.Duration("dur", 200*time.Millisecond, "measurement duration per cell")
		cores     = fs.Int("cores", 8, "emulated core count (GOMAXPROCS)")
		csv       = fs.Bool("csv", false, "emit CSV instead of text tables")
		reps      = fs.Int("reps", 1, "runs per cell; the median is reported")
		schedList = fs.String("schedulers", "", "comma-separated schedulers (default: figure's set)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	engine := ef.Engine()
	wait, err := ef.WaitPolicy()
	if err != nil {
		return err
	}
	counts, err := parseThreads(*threads)
	if err != nil {
		return err
	}
	mixes, err := parseMixes(*mixName)
	if err != nil {
		return err
	}
	schedulers := defaultSchedulers(engine, *schedList)

	for _, mix := range mixes {
		title := fmt.Sprintf("STMBench7 %s on %s (%s waiting)", mix, engine, ef.WaitLabel())
		table := report.NewTable(title, "threads", "committed tx/s")
		for _, scheduler := range schedulers {
			for _, n := range counts {
				res, err := harness.RunMedian(harness.Config{
					Engine:    engine,
					Scheduler: scheduler,
					Wait:      wait,
					Threads:   n,
					Duration:  *dur,
					Cores:     *cores,
				}, *reps, func() harness.Workload {
					return bench7.NewWorkload(mix, bench7.Params{})
				})
				if err != nil {
					return err
				}
				table.Add(seriesName(engine, scheduler), n, res.Throughput)
			}
		}
		if *csv {
			table.WriteCSV(os.Stdout)
			fmt.Println()
		} else {
			table.WriteText(os.Stdout)
		}
	}
	return nil
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		return harness.PaperThreadCounts(), nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseMixes(s string) ([]bench7.Mix, error) {
	if s == "all" {
		return []bench7.Mix{bench7.ReadDominated, bench7.ReadWrite, bench7.WriteDominated}, nil
	}
	m, err := bench7.ParseMix(s)
	if err != nil {
		return nil, err
	}
	return []bench7.Mix{m}, nil
}

func defaultSchedulers(engine, override string) []string {
	if override != "" {
		return strings.Split(override, ",")
	}
	if engine == harness.EngineTiny {
		// Figure 8 compares base TinySTM against Shrink-TinySTM.
		return []string{harness.SchedNone, harness.SchedShrink}
	}
	// Figure 5 compares all four SwissTM variants.
	return []string{harness.SchedNone, harness.SchedPool, harness.SchedShrink, harness.SchedATS}
}

func seriesName(engine, scheduler string) string {
	if scheduler == harness.SchedNone {
		return engine
	}
	return scheduler + "-" + engine
}
