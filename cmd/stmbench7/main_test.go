package main

import (
	"testing"
)

func TestParseThreads(t *testing.T) {
	counts, err := parseThreads("")
	if err != nil || len(counts) == 0 {
		t.Fatalf("default: %v %v", counts, err)
	}
	counts, err = parseThreads("1, 2,8")
	if err != nil || len(counts) != 3 || counts[2] != 8 {
		t.Fatalf("explicit: %v %v", counts, err)
	}
	if _, err := parseThreads("0"); err == nil {
		t.Fatal("zero accepted")
	}
	if _, err := parseThreads("x"); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestParseMixes(t *testing.T) {
	ms, err := parseMixes("all")
	if err != nil || len(ms) != 3 {
		t.Fatalf("all: %v %v", ms, err)
	}
	ms, err = parseMixes("w")
	if err != nil || len(ms) != 1 {
		t.Fatalf("w: %v %v", ms, err)
	}
	if _, err := parseMixes("zzz"); err == nil {
		t.Fatal("bad mix accepted")
	}
}

func TestSeriesNaming(t *testing.T) {
	if got := seriesName("swiss", "none"); got != "swiss" {
		t.Fatalf("base name = %q", got)
	}
	if got := seriesName("tiny", "shrink"); got != "shrink-tiny" {
		t.Fatalf("shrink name = %q", got)
	}
	if got := defaultSchedulers("tiny", ""); len(got) != 2 {
		t.Fatalf("tiny schedulers = %v", got)
	}
	if got := defaultSchedulers("swiss", ""); len(got) != 4 {
		t.Fatalf("swiss schedulers = %v", got)
	}
	if got := defaultSchedulers("swiss", "none,shrink"); len(got) != 2 {
		t.Fatalf("override = %v", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-mix", "r", "-threads", "2", "-dur", "15ms", "-cores", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stm", "bogus"}); err == nil {
		t.Fatal("bogus engine accepted")
	}
	if err := run([]string{"-wait", "bogus"}); err == nil {
		t.Fatal("bogus wait policy accepted")
	}
	if err := run([]string{"-threads", "junk"}); err == nil {
		t.Fatal("junk threads accepted")
	}
}
