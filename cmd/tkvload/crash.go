package main

// The crash scenario (-scenario crash) is the kill -9 drill for tkvd
// durability: load a WAL-backed server with acknowledged increments,
// SIGKILL the process mid-load — no drain, no flush, exactly what a
// power cut leaves behind — restart it over the same log directory, and
// verify that not one acknowledged increment was lost.
//
// Workers perform server-side add increments and tally only
// acknowledged successes; requests that die with the process retry
// against the next incarnation and count nothing. After the configured
// number of kill/restart rounds the counter sum must be at least the
// acked tally. A surplus is tolerated with a note (an increment can be
// fsync-durable and then lose its ack to the dying socket; that is an
// unacknowledged success, not a loss) — a shortfall is an acked update
// the WAL dropped, the exact bug class this drill exists to catch.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type crashSpec struct {
	tkvd    string // path to the tkvd binary
	waldir  string // WAL directory carried across incarnations
	walmode string // WAL layout under test: shared or pershard
	keys    int    // counter keys, seeded once
	workers int
	phase   time.Duration // load duration before each kill (and before the verify)
	kills   int           // SIGKILL rounds
}

// tkvdProc is one incarnation of the server under test.
type tkvdProc struct {
	cmd *exec.Cmd
	out bytes.Buffer // combined stdout+stderr, read only after Wait
}

// startTkvd launches the binary on addr with the scenario's WAL and
// waits until /stats answers.
func startTkvd(sp crashSpec, addr string, client *http.Client) (*tkvdProc, error) {
	p := &tkvdProc{cmd: exec.Command(sp.tkvd,
		"-addr", addr,
		"-tcpaddr", "",
		"-replring", "0",
		"-shards", "4",
		"-wal", sp.waldir,
		"-walmode", sp.walmode,
	)}
	p.cmd.Stdout = &p.out
	p.cmd.Stderr = &p.out
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", sp.tkvd, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get("http://" + addr + "/stats")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		if time.Now().After(deadline) {
			p.cmd.Process.Kill()
			p.cmd.Wait()
			return nil, fmt.Errorf("tkvd never became ready on %s:\n%s", addr, p.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func runCrash(sp crashSpec, out io.Writer) error {
	// Reserve a port, then free it for the server. Every incarnation
	// binds the same address, so the load workers never re-target.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        sp.workers * 2,
			MaxIdleConnsPerHost: sp.workers * 2,
		},
	}
	kv := &httpKV{base: "http://" + addr, client: client}

	proc, err := startTkvd(sp, addr, client)
	if err != nil {
		return err
	}
	for k := 0; k < sp.keys; k++ {
		if err := kv.put(uint64(k), "0"); err != nil {
			proc.cmd.Process.Kill()
			proc.cmd.Wait()
			return fmt.Errorf("seeding counter %d: %w", k, err)
		}
	}

	var acked, failed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < sp.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64((w*7919 + i) % sp.keys)
				if err := kv.add(key, 1); err == nil {
					acked.Add(1)
				} else {
					failed.Add(1)
					// The process is dead or restarting; back off and retry.
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}

	fail := func(err error) error {
		close(stop)
		wg.Wait()
		if proc != nil {
			proc.cmd.Process.Kill()
			proc.cmd.Wait()
		}
		return err
	}
	for round := 1; round <= sp.kills; round++ {
		time.Sleep(sp.phase)
		pre := acked.Load()
		fmt.Fprintf(out, "crash: round %d: %d increments acked; SIGKILL\n", round, pre)
		if err := proc.cmd.Process.Kill(); err != nil {
			return fail(fmt.Errorf("kill: %w", err))
		}
		proc.cmd.Wait()
		proc, err = startTkvd(sp, addr, client)
		if err != nil {
			proc = nil
			return fail(fmt.Errorf("restart after kill %d: %w", round, err))
		}
		line := recoveredLine(proc.out.String())
		if line == "" {
			return fail(fmt.Errorf("restarted tkvd printed no wal recovery line:\n%s", proc.out.String()))
		}
		fmt.Fprintf(out, "crash: restarted; %s\n", line)
	}

	// One more load phase on the final incarnation, then verify.
	time.Sleep(sp.phase)
	close(stop)
	wg.Wait()

	snap, err := kv.snapshot()
	if err != nil {
		return fmt.Errorf("verification snapshot: %w", err)
	}
	sum := uint64(0)
	for k := 0; k < sp.keys; k++ {
		var n uint64
		fmt.Sscanf(snap[uint64(k)], "%d", &n)
		sum += n
	}
	total := acked.Load()
	fmt.Fprintf(out, "crash: acked=%d counter-sum=%d retried-errors=%d kills=%d\n",
		total, sum, failed.Load(), sp.kills)

	if code := post(client, kv.base+"/quit"); code != http.StatusOK {
		proc.cmd.Process.Kill()
	}
	proc.cmd.Wait()

	if sum < total {
		return fmt.Errorf("LOST UPDATES: %d increments acknowledged, counters sum to %d (%d lost)",
			total, sum, total-sum)
	}
	if sum > total {
		fmt.Fprintf(out, "crash: %d unacknowledged increments landed (durable, ack lost to the dying process) — not a loss\n",
			sum-total)
	}
	fmt.Fprintf(out, "crash: PASS — zero lost acknowledged updates\n")
	return nil
}

// recoveredLine extracts the server's WAL recovery boot line.
func recoveredLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "wal") && strings.Contains(line, "recovered") {
			return strings.TrimSpace(line)
		}
	}
	return ""
}
