package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/tkv"
	"github.com/shrink-tm/shrink/internal/tkvwire"
)

// newServer backs the driver with a real in-process tkv store, serving
// HTTP and, when withTCP is set, the binary wire protocol.
func newServer(t *testing.T, engine string, withTCP bool) (httpURL, tcpAddr string) {
	t.Helper()
	st, err := tkv.Open(tkv.Config{
		Shards:    4,
		PoolSize:  4,
		Buckets:   128,
		Engine:    engine,
		Scheduler: enginecfg.SchedShrink,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tkv.NewHandler(st))
	t.Cleanup(srv.Close)
	if !withTCP {
		return srv.URL, ""
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wsrv := tkvwire.NewServer(st)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := wsrv.Serve(ln); !errors.Is(err, tkvwire.ErrServerClosed) {
			t.Errorf("wire Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		wsrv.Close()
		<-done
	})
	return srv.URL, ln.Addr().String()
}

// TestEndToEndMixedTraffic is the in-process version of the CI smoke run:
// a short mixed closed-loop load against each engine with per-shard Shrink
// attached, ending in the zero-lost-update verification (run returns an
// error when the invariant breaks or nothing committed).
func TestEndToEndMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, engine := range []string{enginecfg.EngineSwiss, enginecfg.EngineTiny} {
		t.Run(engine, func(t *testing.T) {
			url, _ := newServer(t, engine, false)
			var out bytes.Buffer
			err := run([]string{
				"-url", url,
				"-dur", "400ms",
				"-warmup", "100ms",
				"-conns", "8",
				"-keys", "64",
				"-blobs", "64",
				"-batchsize", "4",
			}, &out)
			if err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), "verify: OK") {
				t.Fatalf("missing verification:\n%s", out.String())
			}
		})
	}
}

// TestEndToEndTCP drives the same invariant-checked mix over the binary
// wire protocol, pipelined, and checks the BENCH artifact tags its cells
// with the protocol.
func TestEndToEndTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	url, tcpAddr := newServer(t, enginecfg.EngineSwiss, true)
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-url", url,
		"-proto", "tcp",
		"-tcpaddr", tcpAddr,
		"-pipeline", "4",
		"-dur", "400ms",
		"-warmup", "100ms",
		"-conns", "4",
		"-keys", "64",
		"-blobs", "64",
		"-batchsize", "4",
		"-mget", "0.3",
		"-batchcas", "0.5",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("missing verification:\n%s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench benchJSON
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	if len(bench.Cells) != 1 {
		t.Fatalf("cells: %+v", bench.Cells)
	}
	cell := bench.Cells[0]
	if cell.Proto != "tcp" || cell.Pipeline != 4 || cell.Conns != 4 {
		t.Fatalf("cell not tagged with protocol: %+v", cell)
	}
	if cell.Ops == 0 {
		t.Fatal("tcp cell measured zero ops")
	}
}

// TestProtocolSweep sweeps http and tcp in one run; both protocols hit the
// same store, so the shared invariant must still hold, and the artifact
// must carry one cell per (proto, conns) pair.
func TestProtocolSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	url, tcpAddr := newServer(t, enginecfg.EngineSwiss, true)
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-url", url,
		"-proto", "http,tcp",
		"-tcpaddr", tcpAddr,
		"-pipeline", "2",
		"-dur", "300ms",
		"-warmup", "100ms",
		"-conns", "2",
		"-keys", "32",
		"-blobs", "32",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("missing verification:\n%s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench benchJSON
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	if len(bench.Cells) != 2 {
		t.Fatalf("want 2 cells, got %+v", bench.Cells)
	}
	if bench.Cells[0].Proto != "http" || bench.Cells[1].Proto != "tcp" {
		t.Fatalf("cell protocols: %q, %q", bench.Cells[0].Proto, bench.Cells[1].Proto)
	}
}

// TestBatchModeWithCASAndMGet drives the batch-heavy workload with cas ops
// admitted into batches, key-disjoint batches (-overlap 0) and batched
// multi-key reads, ending in the zero-lost-update verification: a refused
// batch must have written nothing, and per-key stripe admission must not
// lose concurrent increments.
func TestBatchModeWithCASAndMGet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, overlap := range []string{"0", "1"} {
		t.Run("overlap="+overlap, func(t *testing.T) {
			url, _ := newServer(t, enginecfg.EngineSwiss, false)
			var out bytes.Buffer
			err := run([]string{
				"-url", url,
				"-dur", "400ms",
				"-warmup", "100ms",
				"-conns", "8",
				"-keys", "64",
				"-blobs", "16",
				"-read", "0.3",
				"-mget", "0.5",
				"-batch", "0.8",
				"-batchsize", "4",
				"-batchcas", "0.5",
				"-overlap", overlap,
			}, &out)
			if err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), "verify: OK") {
				t.Fatalf("missing verification:\n%s", out.String())
			}
		})
	}
}

func TestOpenLoopAndSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	url, _ := newServer(t, enginecfg.EngineSwiss, false)
	var out bytes.Buffer
	err := run([]string{
		"-url", url,
		"-dur", "300ms",
		"-warmup", "100ms",
		"-conns", "2,4",
		"-rate", "2000",
		"-zipf", "1.2",
		"-read", "0.8",
		"-keys", "32",
		"-blobs", "32",
		"-csv",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ops/s") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -url accepted")
	}
	if err := run([]string{"-url", "http://x", "-conns", "0"}, &out); err == nil {
		t.Fatal("zero conns accepted")
	}
	if err := run([]string{"-url", "http://x", "-zipf", "0.5"}, &out); err == nil {
		t.Fatal("zipf <= 1 accepted")
	}
	if err := run([]string{"-url", "http://x", "-keys", "0"}, &out); err == nil {
		t.Fatal("zero keys accepted")
	}
	if err := run([]string{"-url", "http://x", "-overlap", "1.5"}, &out); err == nil {
		t.Fatal("overlap > 1 accepted")
	}
	if err := run([]string{"-url", "http://x", "-mget", "-0.1"}, &out); err == nil {
		t.Fatal("negative mget fraction accepted")
	}
	if err := run([]string{"-url", "http://x", "-proto", "quic"}, &out); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run([]string{"-url", "http://x", "-proto", "tcp"}, &out); err == nil {
		t.Fatal("tcp without -tcpaddr accepted")
	}
	if err := run([]string{"-url", "http://x", "-pipeline", "0"}, &out); err == nil {
		t.Fatal("zero pipeline accepted")
	}
	if err := run([]string{"-url", "http://x", "-warmup", "-1s"}, &out); err == nil {
		t.Fatal("negative warmup accepted")
	}
	// Private batch slices must exist for every *worker*, including the
	// pipelined tcp fan-out: 8 conns × 8 pipeline > 32 keys.
	if err := run([]string{"-url", "http://x", "-proto", "tcp", "-tcpaddr", "127.0.0.1:1",
		"-overlap", "0", "-keys", "32", "-conns", "8"}, &out); err == nil {
		t.Fatal("overlap 0 with keys < workers accepted")
	}
}
