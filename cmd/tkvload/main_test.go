package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/tkv"
)

// newServer backs the driver with a real in-process tkv store.
func newServer(t *testing.T, engine string) *httptest.Server {
	t.Helper()
	st, err := tkv.Open(tkv.Config{
		Shards:    4,
		PoolSize:  4,
		Buckets:   128,
		Engine:    engine,
		Scheduler: enginecfg.SchedShrink,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tkv.NewHandler(st))
	t.Cleanup(srv.Close)
	return srv
}

// TestEndToEndMixedTraffic is the in-process version of the CI smoke run:
// a short mixed closed-loop load against each engine with per-shard Shrink
// attached, ending in the zero-lost-update verification (run returns an
// error when the invariant breaks or nothing committed).
func TestEndToEndMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, engine := range []string{enginecfg.EngineSwiss, enginecfg.EngineTiny} {
		t.Run(engine, func(t *testing.T) {
			srv := newServer(t, engine)
			var out bytes.Buffer
			err := run([]string{
				"-url", srv.URL,
				"-dur", "400ms",
				"-conns", "8",
				"-keys", "64",
				"-blobs", "64",
				"-batchsize", "4",
			}, &out)
			if err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), "verify: OK") {
				t.Fatalf("missing verification:\n%s", out.String())
			}
		})
	}
}

// TestBatchModeWithCASAndMGet drives the batch-heavy workload with cas ops
// admitted into batches, key-disjoint batches (-overlap 0) and batched
// multi-key reads, ending in the zero-lost-update verification: a 409'd
// batch must have written nothing, and per-key stripe admission must not
// lose concurrent increments.
func TestBatchModeWithCASAndMGet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, overlap := range []string{"0", "1"} {
		t.Run("overlap="+overlap, func(t *testing.T) {
			srv := newServer(t, enginecfg.EngineSwiss)
			var out bytes.Buffer
			err := run([]string{
				"-url", srv.URL,
				"-dur", "400ms",
				"-conns", "8",
				"-keys", "64",
				"-blobs", "16",
				"-read", "0.3",
				"-mget", "0.5",
				"-batch", "0.8",
				"-batchsize", "4",
				"-batchcas", "0.5",
				"-overlap", overlap,
			}, &out)
			if err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), "verify: OK") {
				t.Fatalf("missing verification:\n%s", out.String())
			}
		})
	}
}

func TestOpenLoopAndSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv := newServer(t, enginecfg.EngineSwiss)
	var out bytes.Buffer
	err := run([]string{
		"-url", srv.URL,
		"-dur", "300ms",
		"-conns", "2,4",
		"-rate", "2000",
		"-zipf", "1.2",
		"-read", "0.8",
		"-keys", "32",
		"-blobs", "32",
		"-csv",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ops/s") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -url accepted")
	}
	if err := run([]string{"-url", "http://x", "-conns", "0"}, &out); err == nil {
		t.Fatal("zero conns accepted")
	}
	if err := run([]string{"-url", "http://x", "-zipf", "0.5"}, &out); err == nil {
		t.Fatal("zipf <= 1 accepted")
	}
	if err := run([]string{"-url", "http://x", "-keys", "0"}, &out); err == nil {
		t.Fatal("zero keys accepted")
	}
	if err := run([]string{"-url", "http://x", "-overlap", "1.5"}, &out); err == nil {
		t.Fatal("overlap > 1 accepted")
	}
	if err := run([]string{"-url", "http://x", "-mget", "-0.1"}, &out); err == nil {
		t.Fatal("negative mget fraction accepted")
	}
}
