package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/shrink-tm/shrink/internal/tkv"
	"github.com/shrink-tm/shrink/internal/tkvrepl"
	"github.com/shrink-tm/shrink/internal/tkvwire"
)

// miniTKVD is a test stand-in for one tkvd process: the same store, wire
// server, HTTP surface, /promote and /quit semantics, and the same
// fence-drain-close shutdown order — just in-process so the scenario
// test needs no binaries.
type miniTKVD struct {
	store *tkv.Store
	wsrv  *tkvwire.Server
	hsrv  *http.Server

	httpAddr string
	wireAddr string

	mu       sync.Mutex
	follower *tkvrepl.Follower
	quit     chan struct{} // closed by POST /quit
	done     chan struct{} // closed when the quit-shutdown finished
}

func startMini(t *testing.T, follow string) *miniTKVD {
	t.Helper()
	st, err := tkv.Open(tkv.Config{Shards: 2, PoolSize: 2, Buckets: 128, ReplRing: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	m := &miniTKVD{store: st, quit: make(chan struct{}), done: make(chan struct{})}

	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m.wireAddr = wln.Addr().String()
	m.wsrv = tkvwire.NewServer(st)
	go m.wsrv.Serve(wln)

	mux := http.NewServeMux()
	mux.Handle("/", tkv.NewHandler(st))
	mux.HandleFunc("POST /promote", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		if m.follower != nil {
			m.follower.Stop()
			m.follower = nil
		}
		m.store.SetReadOnly(false)
		m.mu.Unlock()
		fmt.Fprintln(w, `{"role":"primary"}`)
	})
	mux.HandleFunc("POST /quit", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		select {
		case <-m.quit:
		default:
			close(m.quit)
		}
		m.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m.httpAddr = hln.Addr().String()
	m.hsrv = &http.Server{Handler: mux}
	go m.hsrv.Serve(hln)

	if follow != "" {
		st.SetReadOnly(true)
		f, err := tkvrepl.Start(st, follow)
		if err != nil {
			t.Fatal(err)
		}
		m.mu.Lock()
		m.follower = f
		m.mu.Unlock()
	}

	// The quit watcher replays tkvd's graceful order: fence, drain the
	// stream, close the wire server, then the HTTP server.
	go func() {
		defer close(m.done)
		<-m.quit
		if !m.store.ReadOnly() {
			m.store.SetReadOnly(true)
			m.wsrv.DrainRepl(5 * time.Second)
		}
		m.wsrv.Close()
		m.hsrv.Close()
	}()
	t.Cleanup(func() {
		m.mu.Lock()
		if m.follower != nil {
			m.follower.Stop()
			m.follower = nil
		}
		select {
		case <-m.quit:
		default:
			close(m.quit)
		}
		m.mu.Unlock()
		<-m.done
	})
	return m
}

// TestFailoverScenario runs the full drill through the same entry point
// the CLI uses and checks the zero-loss verdict.
func TestFailoverScenario(t *testing.T) {
	primary := startMini(t, "")
	follower := startMini(t, primary.wireAddr)

	var out bytes.Buffer
	err := run([]string{
		"-scenario", "failover",
		"-url", "http://" + primary.httpAddr,
		"-url2", "http://" + follower.httpAddr,
		"-keys", "32",
		"-conns", "4",
		"-dur", "300ms",
	}, &out)
	if err != nil {
		t.Fatalf("failover scenario: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS — zero lost acknowledged updates") {
		t.Fatalf("missing pass verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "follower promoted") {
		t.Fatalf("missing promote line:\n%s", out.String())
	}
	// The promoted follower is writable.
	if rs := follower.store.Stats().Repl; rs == nil || rs.Role != "primary" {
		t.Fatalf("follower not promoted: %+v", rs)
	}
}

func TestFailoverScenarioFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "failover", "-url", "http://x"}, &out); err == nil {
		t.Fatal("failover without -url2 accepted")
	}
	if err := run([]string{"-scenario", "bogus", "-url", "http://x"}, &out); err == nil {
		t.Fatal("bogus scenario accepted")
	}
}
