// The wal sweep: tkvload self-hosts a WAL-backed store and measures what
// durability costs at the serving edge. The cross-product is durability
// level (off, async fsync, sync fsync) x WAL layout (pershard: one log
// file and sync loop per shard; shared: every shard interleaved into one
// lane, one fsync per commit group) x connection count. Each cell opens a
// fresh store over a fresh log directory, serves it over the binary wire
// protocol on loopback, drives the configured workload, verifies the
// zero-lost-update invariant, and tears down. The resulting
// BENCH_tkv_wal.json is the durability trajectory artifact: the
// off-vs-sync gap is the price of fsync, and the pershard-vs-shared gap
// at sync is what cross-shard group commit buys back on one device.
package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"

	"github.com/shrink-tm/shrink/internal/report"
	"github.com/shrink-tm/shrink/internal/tkv"
	"github.com/shrink-tm/shrink/internal/tkvwal"
	"github.com/shrink-tm/shrink/internal/tkvwire"
)

// walConfig is one swept durability configuration.
type walConfig struct {
	durability string // "off", "async", "sync"
	mode       tkvwal.Mode
}

func (c walConfig) label() string {
	if c.durability == "off" {
		return "off"
	}
	return string(c.mode) + "/" + c.durability
}

// walConfigs is the swept ladder, cheapest first. "off" has no layout
// axis; async and sync cross both layouts so the artifact shows where
// the lane matters (sync, where fsyncs dominate) and where it cannot
// (async, where nothing waits for them).
var walConfigs = []walConfig{
	{durability: "off"},
	{durability: "async", mode: tkvwal.ModePerShard},
	{durability: "async", mode: tkvwal.ModeShared},
	{durability: "sync", mode: tkvwal.ModePerShard},
	{durability: "sync", mode: tkvwal.ModeShared},
}

// walSweepSpec is the full wal-sweep request.
type walSweepSpec struct {
	cfg                   loadConfig
	conns                 []int
	shards, pool, buckets int
	csv                   bool
	jsonPath              string
}

// walBenchJSON is the machine-readable wal sweep, written by -json (the
// committed BENCH_tkv_wal.json is one of these).
type walBenchJSON struct {
	Tool      string        `json:"tool"`
	ReadFrac  float64       `json:"readFrac"`
	BatchFrac float64       `json:"batchFrac"`
	BatchSize int           `json:"batchSize"`
	AddFrac   float64       `json:"addFrac,omitempty"`
	Overlap   float64       `json:"overlap"`
	Zipf      float64       `json:"zipf"`
	Keys      int           `json:"keys"`
	Blobs     int           `json:"blobs"`
	Shards    int           `json:"shards"`
	Pool      int           `json:"pool"`
	Pipeline  int           `json:"pipeline"`
	Procs     int           `json:"gomaxprocs"`
	WarmupSec float64       `json:"warmupSec"`
	DurSec    float64       `json:"durationSecPerCell"`
	Cells     []walCellJSON `json:"cells"`
}

// walCellJSON is one (durability, layout, conns) measurement.
type walCellJSON struct {
	Durability    string  `json:"durability"`
	WalMode       string  `json:"walMode,omitempty"`
	Conns         int     `json:"conns"`
	Ops           uint64  `json:"ops"`
	OpsPerSec     float64 `json:"opsPerSec"`
	P50us         uint64  `json:"p50us"`
	P95us         uint64  `json:"p95us"`
	P99us         uint64  `json:"p99us"`
	Errors        uint64  `json:"errors"`
	Commits       uint64  `json:"commits"`
	WalAppends    uint64  `json:"walAppends,omitempty"`
	WalFsyncs     uint64  `json:"walFsyncs,omitempty"`
	WalGroupMean  float64 `json:"walGroupMean,omitempty"`
	WalFsyncP99us uint64  `json:"walFsyncP99us,omitempty"`
	VerifyOK      bool    `json:"verifyOK"`
}

// runWalSweep runs the durability cross-product. Every cell verifies its
// own zero-lost-update invariant; the first violation fails the run after
// the JSON artifact is written, so a broken cell is recorded, not hidden.
func runWalSweep(sp walSweepSpec, out io.Writer) error {
	table := report.NewTable(
		fmt.Sprintf("tkvload wal sweep (self-hosted, shards=%d pool=%d read=%.2f batch=%.2f add=%.2f pipeline=%d)",
			sp.shards, sp.pool, sp.cfg.readFrac, sp.cfg.batchFrac, sp.cfg.addFrac, sp.cfg.pipeline),
		"conns", "ops/s by durability/layout")
	bench := walBenchJSON{
		Tool:      "tkvload-sweep-wal",
		ReadFrac:  sp.cfg.readFrac,
		BatchFrac: sp.cfg.batchFrac,
		BatchSize: sp.cfg.batchSize,
		AddFrac:   sp.cfg.addFrac,
		Overlap:   sp.cfg.overlap,
		Zipf:      sp.cfg.zipfS,
		Keys:      sp.cfg.keys,
		Blobs:     sp.cfg.blobs,
		Shards:    sp.shards,
		Pool:      sp.pool,
		Pipeline:  sp.cfg.pipeline,
		Procs:     runtime.GOMAXPROCS(0),
		WarmupSec: sp.cfg.warmup.Seconds(),
		DurSec:    sp.cfg.dur.Seconds(),
	}
	var firstErr error
	for _, wc := range walConfigs {
		for _, n := range sp.conns {
			cell, vres, err := runWalCell(sp, wc, n, out)
			if err != nil && vres == nil {
				return fmt.Errorf("%s conns=%d: %w", wc.label(), n, err)
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s conns=%d: %w", wc.label(), n, err)
			}
			opsPerSec := float64(cell.ops) / cell.elapsed.Seconds()
			table.Add(wc.label()+" ops/s", n, opsPerSec)
			table.Add(wc.label()+" p99us", n, float64(cell.hist.Quantile(0.99)))
			fmt.Fprintf(out, "cell %s conns=%d: %.0f ops/s p50=%dus p99=%dus errs=%d wal: appends=%d fsyncs=%d group_mean=%.1f fsync_p99=%dus\n",
				wc.label(), n, opsPerSec, cell.hist.Quantile(0.50), cell.hist.Quantile(0.99),
				cell.errs, vres.walAppends, vres.walFsyncs, vres.WalGroupMean, vres.WalFsyncP99us)
			bench.Cells = append(bench.Cells, walCellJSON{
				Durability:    wc.durability,
				WalMode:       vres.WalMode,
				Conns:         n,
				Ops:           cell.ops,
				OpsPerSec:     opsPerSec,
				P50us:         cell.hist.Quantile(0.50),
				P95us:         cell.hist.Quantile(0.95),
				P99us:         cell.hist.Quantile(0.99),
				Errors:        cell.errs,
				Commits:       vres.Commits,
				WalAppends:    vres.walAppends,
				WalFsyncs:     vres.walFsyncs,
				WalGroupMean:  vres.WalGroupMean,
				WalFsyncP99us: vres.WalFsyncP99us,
				VerifyOK:      vres.OK,
			})
		}
	}
	if sp.csv {
		table.WriteCSV(out)
	} else {
		table.WriteText(out)
	}
	if sp.jsonPath != "" {
		if err := report.SaveJSON(sp.jsonPath, bench); err != nil {
			if firstErr != nil {
				fmt.Fprintln(out, "tkvload: writing", sp.jsonPath, "failed:", err)
				return firstErr
			}
			return err
		}
	}
	return firstErr
}

// runWalCell measures one durability configuration at one connection
// count over a fresh log directory. The returned verifyJSON is non-nil
// whenever the store came up; a nil verifyJSON means the cell never ran.
func runWalCell(sp walSweepSpec, wc walConfig, connsN int, out io.Writer) (cellResult, *verifyJSON, error) {
	cfg := tkv.Config{
		Shards:   sp.shards,
		PoolSize: sp.pool,
		Buckets:  sp.buckets,
	}
	if wc.durability != "off" {
		dir, err := os.MkdirTemp("", "tkvload-walsweep-")
		if err != nil {
			return cellResult{}, nil, err
		}
		defer os.RemoveAll(dir)
		cfg.WAL = &tkvwal.Options{
			Dir:    dir,
			NoSync: wc.durability == "async",
			Mode:   wc.mode,
		}
	}
	st, err := tkv.Open(cfg)
	if err != nil {
		return cellResult{}, nil, err
	}
	defer st.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cellResult{}, nil, err
	}
	srv := tkvwire.NewServer(st)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-serveDone; !errors.Is(err, tkvwire.ErrServerClosed) {
			fmt.Fprintln(out, "tkvload: wire server:", err)
		}
	}()

	d := &driver{control: &localKV{st: st}, tcpaddr: ln.Addr().String(), cfg: sp.cfg}
	if err := d.seedCounters(); err != nil {
		return cellResult{}, nil, err
	}
	clients, workers, teardown, err := d.setup(protoTCP, connsN)
	if err != nil {
		return cellResult{}, nil, err
	}
	cell := d.drive(clients, workers)
	teardown()
	vres, verr := d.verify(out)
	return cell, vres, verr
}
