// Command tkvload is an open-loop HTTP load driver for tkvd. It generates a
// mixed workload — reads, client-side CAS read-modify-write increments,
// blob puts/deletes and cross-shard atomic batch adds — with configurable
// key skew, read ratio, batch size and connection count, and reports
// throughput and latency percentiles as a report table over the swept
// connection counts.
//
// The driver doubles as a correctness checker: every increment it performs
// goes through a transactional server path (CAS or batch add), so at the
// end of the run the sum of all counter keys must equal the number of
// increments that reported success. Any lost update — in an engine, in the
// shard locking protocol, or in the batch two-phase — fails the run, as
// does a committed-transaction count of zero. Blob values embed their key,
// so a read returning another key's value is also detected.
//
// Usage:
//
//	tkvload -url http://127.0.0.1:7070 -dur 5s -conns 4,16,64
//	tkvload -url http://127.0.0.1:7070 -read 0.9 -zipf 1.2 -batchsize 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shrink-tm/shrink/internal/report"
	"github.com/shrink-tm/shrink/internal/tkv"
	"github.com/shrink-tm/shrink/internal/trace"
)

// blobBase offsets the blob key region away from the counter keys.
const blobBase = uint64(1) << 32

// casAttempts bounds one CAS increment's retry loop.
const casAttempts = 64

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tkvload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tkvload", flag.ContinueOnError)
	var (
		url       = fs.String("url", "", "base URL of the tkvd server (required)")
		dur       = fs.Duration("dur", 2*time.Second, "measurement duration per connection-count cell")
		connsList = fs.String("conns", "8", "comma-separated connection counts to sweep")
		rate      = fs.Float64("rate", 0, "open-loop arrival rate in ops/s (0 = closed loop)")
		keys      = fs.Int("keys", 128, "counter key count (keys 0..n-1, sum-verified)")
		blobs     = fs.Int("blobs", 128, "blob key count (put/delete/get region)")
		readFrac  = fs.Float64("read", 0.5, "fraction of operations that are reads")
		batchFrac = fs.Float64("batch", 0.25, "fraction of updates that are atomic batch adds")
		batchSize = fs.Int("batchsize", 8, "adds per batch")
		zipfS     = fs.Float64("zipf", 0, "zipf skew parameter (>1 skews; 0 = uniform)")
		seed      = fs.Int64("seed", 1, "RNG seed")
		csv       = fs.Bool("csv", false, "emit CSV instead of a text table")
		jsonPath  = fs.String("json", "", "also write the sweep as machine-readable JSON to this file (e.g. BENCH_tkv.json)")
		verifyEnd = fs.Bool("verify", true, "verify the zero-lost-update invariant at the end")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	if *keys <= 0 || *blobs <= 0 || *batchSize <= 0 {
		return fmt.Errorf("-keys, -blobs and -batchsize must be positive")
	}
	if *zipfS != 0 && *zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1 (or 0 for uniform)")
	}
	var conns []int
	for _, p := range strings.Split(*connsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad connection count %q", p)
		}
		conns = append(conns, n)
	}

	d := &driver{
		base: strings.TrimRight(*url, "/"),
		cfg: loadConfig{
			dur:       *dur,
			rate:      *rate,
			keys:      *keys,
			blobs:     *blobs,
			readFrac:  *readFrac,
			batchFrac: *batchFrac,
			batchSize: *batchSize,
			zipfS:     *zipfS,
			seed:      *seed,
		},
	}
	maxConns := 0
	for _, n := range conns {
		maxConns = max(maxConns, n)
	}
	d.client = &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        maxConns * 2,
			MaxIdleConnsPerHost: maxConns * 2,
		},
	}

	// Seed every counter key so CAS loops always find a value.
	for k := 0; k < *keys; k++ {
		if err := d.put(uint64(k), "0"); err != nil {
			return fmt.Errorf("seeding counters: %w", err)
		}
	}

	mode := "closed-loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f ops/s", *rate)
	}
	table := report.NewTable(
		fmt.Sprintf("tkvload %s (%s, read=%.2f batch=%.2f zipf=%g)",
			d.base, mode, *readFrac, *batchFrac, *zipfS),
		"conns", "ops/s and latency (us)")
	bench := benchJSON{
		Tool:      "tkvload",
		Mode:      mode,
		ReadFrac:  *readFrac,
		BatchFrac: *batchFrac,
		BatchSize: *batchSize,
		Zipf:      *zipfS,
		Keys:      *keys,
		Blobs:     *blobs,
		DurSec:    dur.Seconds(),
	}
	for _, n := range conns {
		cell := d.drive(n)
		opsPerSec := float64(cell.ops) / cell.elapsed.Seconds()
		table.Add("ops/s", n, opsPerSec)
		table.Add("p50us", n, float64(cell.hist.Quantile(0.50)))
		table.Add("p95us", n, float64(cell.hist.Quantile(0.95)))
		table.Add("p99us", n, float64(cell.hist.Quantile(0.99)))
		table.Add("errors", n, float64(cell.errs))
		bench.Cells = append(bench.Cells, cellJSON{
			Conns:     n,
			Ops:       cell.ops,
			OpsPerSec: opsPerSec,
			P50us:     cell.hist.Quantile(0.50),
			P95us:     cell.hist.Quantile(0.95),
			P99us:     cell.hist.Quantile(0.99),
			Errors:    cell.errs,
		})
	}
	if *csv {
		table.WriteCSV(out)
	} else {
		table.WriteText(out)
	}

	var verifyErr error
	if *verifyEnd {
		bench.Verify, verifyErr = d.verify(out)
	}
	if *jsonPath != "" {
		if err := report.SaveJSON(*jsonPath, bench); err != nil {
			if verifyErr != nil {
				// Don't let an artifact-write failure mask an invariant
				// violation; the violation is the run's result.
				fmt.Fprintln(out, "tkvload: writing", *jsonPath, "failed:", err)
				return verifyErr
			}
			return err
		}
	}
	return verifyErr
}

// benchJSON is the machine-readable form of one tkvload run, written by
// -json so future PRs have a perf trajectory to diff against (the committed
// BENCH_tkv.json at the repository root is one of these).
type benchJSON struct {
	Tool      string      `json:"tool"`
	Mode      string      `json:"mode"`
	ReadFrac  float64     `json:"readFrac"`
	BatchFrac float64     `json:"batchFrac"`
	BatchSize int         `json:"batchSize"`
	Zipf      float64     `json:"zipf"`
	Keys      int         `json:"keys"`
	Blobs     int         `json:"blobs"`
	DurSec    float64     `json:"durationSecPerCell"`
	Cells     []cellJSON  `json:"cells"`
	Verify    *verifyJSON `json:"verify,omitempty"`
}

// cellJSON is one swept connection count's measurement.
type cellJSON struct {
	Conns     int     `json:"conns"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"opsPerSec"`
	P50us     uint64  `json:"p50us"`
	P95us     uint64  `json:"p95us"`
	P99us     uint64  `json:"p99us"`
	Errors    uint64  `json:"errors"`
}

// verifyJSON is the end-of-run invariant check's outcome.
type verifyJSON struct {
	Commits        uint64 `json:"commits"`
	Aborts         uint64 `json:"aborts"`
	Serializations uint64 `json:"serializations"`
	CounterSum     uint64 `json:"counterSum"`
	Increments     uint64 `json:"increments"`
	OK             bool   `json:"ok"`
}

// loadConfig is the per-run workload shape.
type loadConfig struct {
	dur                 time.Duration
	rate                float64
	keys, blobs         int
	readFrac, batchFrac float64
	batchSize           int
	zipfS               float64
	seed                int64
}

// driver owns the HTTP client and the cross-cell increment tally.
type driver struct {
	base   string
	client *http.Client
	cfg    loadConfig

	// Successful transactional increments, accumulated across cells; the
	// final counter sum must equal their total.
	casIncrs  atomic.Uint64
	batchAdds atomic.Uint64
	// blobCorrupt counts blob reads whose value named another key.
	blobCorrupt atomic.Uint64
}

// cellResult is one swept connection count's measurement.
type cellResult struct {
	ops     uint64
	errs    uint64
	elapsed time.Duration
	hist    *trace.Histogram
}

// drive runs one cell: cfg.dur of traffic over n connections. In open-loop
// mode arrivals are generated at cfg.rate regardless of completion, so
// latency includes queueing delay — the serving regime the paper's
// overload figures are about. (Arrival timestamps have the generator's
// 5ms tick granularity, which bounds the latency resolution in that mode.)
func (d *driver) drive(n int) cellResult {
	cell := cellResult{hist: &trace.Histogram{}}
	var ops, errs atomic.Uint64
	stop := make(chan struct{})
	var arrivals chan time.Time
	if d.cfg.rate > 0 {
		arrivals = make(chan time.Time, 1<<16)
		go func() {
			// Batch arrivals per tick, scaled by the measured time since
			// the previous fire: per-arrival tickers undershoot badly at
			// sub-millisecond intervals, and tickers coalesce fires under
			// coarse timers, so wall-clock elapsed is the only honest
			// arrival budget.
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			last := time.Now()
			carry := 0.0
			for {
				select {
				case <-stop:
					return
				case t := <-tick.C:
					carry += d.cfg.rate * t.Sub(last).Seconds()
					last = t
					n := int(carry)
					carry -= float64(n)
					for i := 0; i < n; i++ {
						select {
						case arrivals <- t:
						default: // queue full; drop to keep the driver honest
						}
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(d.cfg.seed + int64(w)*6151 + int64(n)))
			var zipf *rand.Zipf
			if d.cfg.zipfS > 1 {
				zipf = rand.NewZipf(rng, d.cfg.zipfS, 1, uint64(d.cfg.keys-1))
			}
			for {
				var issued time.Time
				if arrivals != nil {
					select {
					case <-stop:
						return
					case issued = <-arrivals:
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
					issued = time.Now()
				}
				if err := d.op(rng, zipf); err != nil {
					errs.Add(1)
				} else {
					ops.Add(1)
				}
				cell.hist.ObserveDuration(time.Since(issued))
			}
		}()
	}
	time.Sleep(d.cfg.dur)
	close(stop)
	wg.Wait()
	cell.elapsed = time.Since(start)
	cell.ops = ops.Load()
	cell.errs = errs.Load()
	return cell
}

// counterKey picks a counter key, honoring the configured skew.
func (d *driver) counterKey(rng *rand.Rand, zipf *rand.Zipf) uint64 {
	if zipf != nil {
		return zipf.Uint64()
	}
	return uint64(rng.Intn(d.cfg.keys))
}

// op issues one operation of the mix.
func (d *driver) op(rng *rand.Rand, zipf *rand.Zipf) error {
	if rng.Float64() < d.cfg.readFrac {
		if rng.Intn(2) == 0 {
			_, _, err := d.get(d.counterKey(rng, zipf))
			return err
		}
		return d.getBlob(rng)
	}
	if rng.Float64() < d.cfg.batchFrac {
		return d.batchAdd(rng, zipf)
	}
	switch rng.Intn(5) {
	case 0, 1:
		return d.casIncrement(rng, zipf)
	case 2, 3:
		key := blobBase + uint64(rng.Intn(d.cfg.blobs))
		return d.put(key, fmt.Sprintf("%d:%d", key, rng.Int63()))
	default:
		return d.del(blobBase + uint64(rng.Intn(d.cfg.blobs)))
	}
}

// casIncrement performs a client-side read-modify-write: read the counter,
// CAS it one higher, retry on interference.
func (d *driver) casIncrement(rng *rand.Rand, zipf *rand.Zipf) error {
	key := d.counterKey(rng, zipf)
	for attempt := 0; attempt < casAttempts; attempt++ {
		cur, found, err := d.get(key)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("counter key %d missing", key)
		}
		n, err := strconv.ParseInt(cur, 10, 64)
		if err != nil {
			return fmt.Errorf("counter key %d holds %q", key, cur)
		}
		var resp struct {
			Swapped bool `json:"swapped"`
		}
		err = d.postJSON("/cas", map[string]any{
			"key": key, "old": cur, "new": strconv.FormatInt(n+1, 10),
		}, &resp)
		if err != nil {
			return err
		}
		if resp.Swapped {
			d.casIncrs.Add(1)
			return nil
		}
	}
	// The increment never succeeded; nothing was counted, so the
	// invariant is unaffected. Report it as an error observation.
	return fmt.Errorf("cas on key %d starved after %d attempts", key, casAttempts)
}

// batchAdd issues one cross-shard atomic batch of +1 adds.
func (d *driver) batchAdd(rng *rand.Rand, zipf *rand.Zipf) error {
	ops := make([]tkv.Op, d.cfg.batchSize)
	for i := range ops {
		ops[i] = tkv.Op{Kind: tkv.OpAdd, Key: d.counterKey(rng, zipf), Delta: 1}
	}
	var resp struct {
		Results []tkv.OpResult `json:"results"`
	}
	if err := d.postJSON("/batch", map[string]any{"ops": ops}, &resp); err != nil {
		return err
	}
	if len(resp.Results) != len(ops) {
		return fmt.Errorf("batch returned %d results for %d ops", len(resp.Results), len(ops))
	}
	d.batchAdds.Add(uint64(len(ops)))
	return nil
}

// getBlob reads a random blob key and cross-checks that the value names the
// key it was stored under.
func (d *driver) getBlob(rng *rand.Rand) error {
	key := blobBase + uint64(rng.Intn(d.cfg.blobs))
	val, found, err := d.get(key)
	if err != nil {
		return err
	}
	if found && !strings.HasPrefix(val, fmt.Sprintf("%d:", key)) {
		d.blobCorrupt.Add(1)
		return fmt.Errorf("blob key %d holds foreign value %q", key, val)
	}
	return nil
}

// verify pulls a consistent snapshot and the server stats and checks the
// run's invariants. The returned summary is embedded in the -json artifact
// even when a check fails (with OK=false), so a broken run is recorded, not
// hidden.
func (d *driver) verify(out io.Writer) (*verifyJSON, error) {
	res := &verifyJSON{Increments: d.casIncrs.Load() + d.batchAdds.Load()}
	snap := map[uint64]string{}
	if err := d.getJSON("/snapshot", &snap); err != nil {
		return res, fmt.Errorf("snapshot: %w", err)
	}
	var sum uint64
	for k := 0; k < d.cfg.keys; k++ {
		v, ok := snap[uint64(k)]
		if !ok {
			return res, fmt.Errorf("counter key %d vanished", k)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return res, fmt.Errorf("counter key %d holds %q", k, v)
		}
		sum += n
	}
	res.CounterSum = sum
	want := res.Increments
	var stats tkv.Stats
	if err := d.getJSON("/stats", &stats); err != nil {
		return res, fmt.Errorf("stats: %w", err)
	}
	res.Commits = stats.Commits
	res.Aborts = stats.Aborts
	res.Serializations = stats.Serializations
	fmt.Fprintf(out, "verify: committed=%d aborts=%d serializations=%d counterSum=%d increments=%d (cas=%d batchAdds=%d)\n",
		stats.Commits, stats.Aborts, stats.Serializations,
		sum, want, d.casIncrs.Load(), d.batchAdds.Load())
	if sum < want {
		return res, fmt.Errorf("LOST UPDATES: counters sum to %d but %d increments succeeded", sum, want)
	}
	if sum > want {
		// The opposite mismatch is a driver-side undercount: an
		// increment committed server-side but its response was lost
		// (timeout, reset), so it was tallied as an error instead.
		return res, fmt.Errorf("uncounted increments: counters sum to %d but only %d increments were acknowledged (a CAS/batch response was likely lost in flight)", sum, want)
	}
	if d.blobCorrupt.Load() > 0 {
		return res, fmt.Errorf("%d blob reads returned foreign values", d.blobCorrupt.Load())
	}
	if stats.Commits == 0 {
		return res, fmt.Errorf("server committed zero transactions")
	}
	res.OK = true
	fmt.Fprintln(out, "verify: OK (zero lost updates)")
	return res, nil
}

// ---- HTTP plumbing ----

// wire is a pooled response-read buffer: the driver's own per-response
// decoder allocations shouldn't pollute the latency it is measuring. Only
// the response side is pooled — a response body is fully drained
// synchronously inside do() before the buffer is reused, whereas a pooled
// *request* body would race with the transport's background write loop
// whenever the server answers before reading the whole body (early non-200,
// reset), so request bodies stay freshly allocated per call.
type wire struct {
	resp bytes.Buffer
}

var wirePool = sync.Pool{New: func() any { return new(wire) }}

func (d *driver) get(key uint64) (string, bool, error) {
	resp, err := d.client.Get(fmt.Sprintf("%s/kv/%d", d.base, key))
	if err != nil {
		return "", false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return "", false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return "", false, fmt.Errorf("GET key %d: status %d", key, resp.StatusCode)
	}
	w := wirePool.Get().(*wire)
	defer wirePool.Put(w)
	w.resp.Reset()
	if _, err := io.Copy(&w.resp, resp.Body); err != nil {
		return "", false, err
	}
	var body struct {
		Value string `json:"value"`
	}
	if err := json.Unmarshal(w.resp.Bytes(), &body); err != nil {
		return "", false, err
	}
	return body.Value, true, nil
}

func (d *driver) put(key uint64, val string) error {
	b, err := json.Marshal(map[string]string{"value": val})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/kv/%d", d.base, key), bytes.NewReader(b))
	if err != nil {
		return err
	}
	return d.do(req, nil, nil)
}

func (d *driver) del(key uint64) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/kv/%d", d.base, key), nil)
	if err != nil {
		return err
	}
	return d.do(req, nil, nil)
}

func (d *driver) postJSON(path string, body, into any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, d.base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	return d.do(req, nil, into)
}

func (d *driver) getJSON(path string, into any) error {
	req, err := http.NewRequest(http.MethodGet, d.base+path, nil)
	if err != nil {
		return err
	}
	return d.do(req, nil, into)
}

// do sends req and decodes the response into `into` (when non-nil) via w's
// response buffer; a nil w borrows one from the pool.
func (d *driver) do(req *http.Request, w *wire, into any) error {
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if into == nil {
		return nil
	}
	if w == nil {
		w = wirePool.Get().(*wire)
		defer wirePool.Put(w)
	}
	w.resp.Reset()
	if _, err := io.Copy(&w.resp, resp.Body); err != nil {
		return err
	}
	return json.Unmarshal(w.resp.Bytes(), into)
}
