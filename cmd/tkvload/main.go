// Command tkvload is an open-loop load driver for tkvd. It generates a
// mixed workload — reads (single-key and batched multi-key), client-side
// CAS read-modify-write increments, blob puts/deletes and cross-shard
// atomic batches of adds and cas increments — with configurable key skew,
// read ratio, batch size, batch key overlap and connection count, and
// reports throughput and latency percentiles as a report table over the
// swept connection counts.
//
// The driver speaks both server protocols. -proto selects one or sweeps
// several (comma-separated): "http" drives the JSON surface through a
// pooled http.Client; "tcp" drives the binary wire protocol
// (internal/tkvwire) over persistent connections with -pipeline in-flight
// requests per connection, the serving edge the binary protocol exists
// for. Each cell's first -warmup of traffic is excluded from the latency
// histogram and the ops/s figure, so connection ramp-up, pool fills and
// scheduler warm-up never pollute the steady-state numbers.
//
// The driver doubles as a correctness checker: every increment it performs
// goes through a transactional server path (CAS, batch add or batch cas),
// so at the end of the run the sum of all counter keys must equal the
// number of increments that reported success — a batch refused for a cas
// mismatch must have written nothing. Any lost update — in an engine, in
// the striped key-lock protocol, or in the batch two-phase — fails the
// run, as does a committed-transaction count of zero. Blob values embed
// their key, so a read returning another key's value is also detected.
// Increments are tallied across warm-up and measurement alike: the
// invariant is about every write that happened, not just the measured ones.
//
// Batch key overlap (-overlap) controls how much concurrent batches
// contend: 1 draws every batch key from the shared counter space (batches
// collide constantly), 0 confines each worker's batches to a private
// slice of it (batches are key-disjoint and, under the striped batch
// planner, commit concurrently).
//
// Usage:
//
//	tkvload -url http://127.0.0.1:7070 -dur 5s -conns 4,16,64
//	tkvload -url http://127.0.0.1:7070 -proto tcp -tcpaddr 127.0.0.1:7071 -pipeline 16
//	tkvload -url http://127.0.0.1:7070 -proto http,tcp -tcpaddr 127.0.0.1:7071 -conns 8
//	tkvload -url http://127.0.0.1:7070 -read 0 -batch 1 -overlap 0 -batchcas 0.25
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shrink-tm/shrink/internal/report"
	"github.com/shrink-tm/shrink/internal/tkv"
	"github.com/shrink-tm/shrink/internal/tkvwire"
	"github.com/shrink-tm/shrink/internal/trace"
)

// blobBase offsets the blob key region away from the counter keys.
const blobBase = uint64(1) << 32

// casAttempts bounds one CAS increment's retry loop.
const casAttempts = 64

// Protocol names accepted by -proto.
const (
	protoHTTP = "http"
	protoTCP  = "tcp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tkvload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tkvload", flag.ContinueOnError)
	var (
		url       = fs.String("url", "", "base URL of the tkvd server (required; also the control surface for seeding and verification)")
		tcpaddr   = fs.String("tcpaddr", "", "tkvd binary wire protocol address (required when -proto includes tcp)")
		protoList = fs.String("proto", protoHTTP, "comma-separated protocols to sweep: http, tcp")
		pipeline  = fs.Int("pipeline", 8, "in-flight requests per tcp connection (tcp proto only)")
		warmup    = fs.Duration("warmup", time.Second, "per-cell warm-up excluded from latency histograms and ops/s")
		dur       = fs.Duration("dur", 2*time.Second, "measurement duration per connection-count cell (after warm-up)")
		connsList = fs.String("conns", "8", "comma-separated connection counts to sweep")
		scenario  = fs.String("scenario", "",
			"scripted drill instead of a sweep: 'failover' kills the primary mid-load, "+
				"promotes the follower and verifies zero lost acknowledged updates; "+
				"'crash' SIGKILLs a WAL-backed tkvd mid-load, restarts it over the same "+
				"log directory and verifies zero lost acknowledged updates")
		url2      = fs.String("url2", "", "follower base URL (required by -scenario failover)")
		tkvdBin   = fs.String("tkvd", "", "path to the tkvd binary (required by -scenario crash)")
		waldirArg = fs.String("waldir", "", "WAL directory for -scenario crash (empty: a fresh temp dir)")
		kills     = fs.Int("kills", 2, "SIGKILL/restart rounds for -scenario crash")
		walMode   = fs.String("walmode", "shared", "WAL layout for -scenario crash: shared (one lane, one fsync per group for the whole store) or pershard")
		rate      = fs.Float64("rate", 0, "open-loop arrival rate in ops/s (0 = closed loop)")
		keys      = fs.Int("keys", 128, "counter key count (keys 0..n-1, sum-verified)")
		blobs     = fs.Int("blobs", 128, "blob key count (put/delete/get region)")
		readFrac  = fs.Float64("read", 0.5, "fraction of operations that are reads")
		mgetFrac  = fs.Float64("mget", 0, "fraction of reads issued as batched multi-key reads")
		batchFrac = fs.Float64("batch", 0.25, "fraction of updates that are atomic batches")
		batchSize = fs.Int("batchsize", 8, "ops per batch (and keys per mget)")
		batchCAS  = fs.Float64("batchcas", 0, "fraction of batch ops that are cas increments instead of adds")
		overlap   = fs.Float64("overlap", 1, "fraction of batch keys drawn from the shared key space (the rest from a per-worker private slice)")
		zipfArg   = fs.String("zipf", "0", "zipf skew: one value (0 = uniform, any s > 0 skews), a comma list, or a ladder a..b[/step] (sweep mode)")
		addFrac   = fs.Float64("addfrac", 0, "fraction of non-batch updates issued as server-side add increments")
		minShed   = fs.Uint64("minshed", 0, "fail unless at least this many requests were shed with backpressure")
		sweepMode = fs.String("sweep", "", "sweep mode: 'sched' self-hosts the store and crosses scheduler x engine x zipf; 'wal' self-hosts and crosses durability (off, async, sync) x WAL layout (pershard, shared) x conns")
		schedArg  = fs.String("scheds", "none,shrink,ats,shrink+admit", "scheduler configs for -sweep sched ('+admit' adds the admission layer)")
		engineArg = fs.String("engines", "swiss,tiny", "STM engines for -sweep sched")
		shards    = fs.Int("shards", 2, "shards for the self-hosted store (-sweep sched only)")
		pool      = fs.Int("pool", 4, "STM threads per shard (-sweep sched only)")
		buckets   = fs.Int("buckets", 512, "hash buckets per shard (-sweep sched only)")
		admitKnee = fs.Float64("admitknee", 0, "overload knee for '+admit' sweep configs (0 = default; <0 drill mode)")
		admitMax  = fs.Float64("admitmax", 0, "shed probability ceiling for '+admit' sweep configs (0 = default)")
		seed      = fs.Int64("seed", 1, "RNG seed")
		csv       = fs.Bool("csv", false, "emit CSV instead of a text table")
		jsonPath  = fs.String("json", "", "also write the sweep as machine-readable JSON to this file (e.g. BENCH_tkv.json)")
		verifyEnd = fs.Bool("verify", true, "verify the zero-lost-update invariant at the end")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keys <= 0 || *blobs <= 0 || *batchSize <= 0 {
		return fmt.Errorf("-keys, -blobs and -batchsize must be positive")
	}
	if *pipeline <= 0 {
		return fmt.Errorf("-pipeline must be positive")
	}
	if *warmup < 0 {
		return fmt.Errorf("-warmup must not be negative")
	}
	zipfs, err := parseZipfLadder(*zipfArg)
	if err != nil {
		return err
	}
	if *overlap < 0 || *overlap > 1 || *mgetFrac < 0 || *mgetFrac > 1 || *batchCAS < 0 || *batchCAS > 1 || *addFrac < 0 || *addFrac > 1 {
		return fmt.Errorf("-overlap, -mget, -batchcas and -addfrac must be in [0,1]")
	}
	var protos []string
	for _, p := range strings.Split(*protoList, ",") {
		p = strings.TrimSpace(p)
		switch p {
		case protoHTTP, protoTCP:
			protos = append(protos, p)
		default:
			return fmt.Errorf("unknown protocol %q (want http or tcp)", p)
		}
	}
	if len(protos) == 0 {
		return fmt.Errorf("-proto must name at least one protocol")
	}
	tcpSwept := *sweepMode == "sched" || *sweepMode == "wal"
	for _, p := range protos {
		tcpSwept = tcpSwept || p == protoTCP
	}
	if tcpSwept && *tcpaddr == "" && *sweepMode == "" {
		return fmt.Errorf("-tcpaddr is required when -proto includes tcp")
	}
	// The worker count per cell is conns for http and conns*pipeline for
	// tcp (workers share connections, pipelining their requests); the sched
	// sweep always drives the binary protocol.
	maxFanout := 1
	if tcpSwept {
		maxFanout = *pipeline
	}
	var conns []int
	for _, p := range strings.Split(*connsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad connection count %q", p)
		}
		// Disjoint batch keys need a non-empty private slice per worker;
		// silently degrading to the shared space would corrupt the overlap
		// comparison the flag exists for.
		if *overlap < 1 && *keys/(n*maxFanout) == 0 {
			return fmt.Errorf("-overlap %g needs -keys >= workers (got %d keys, %d workers)",
				*overlap, *keys, n*maxFanout)
		}
		conns = append(conns, n)
	}

	cfg := loadConfig{
		dur:       *dur,
		warmup:    *warmup,
		rate:      *rate,
		keys:      *keys,
		blobs:     *blobs,
		readFrac:  *readFrac,
		mgetFrac:  *mgetFrac,
		batchFrac: *batchFrac,
		batchSize: *batchSize,
		batchCAS:  *batchCAS,
		overlap:   *overlap,
		addFrac:   *addFrac,
		seed:      *seed,
		pipeline:  *pipeline,
	}

	switch *scenario {
	case "":
	case "failover":
		if *url == "" || *url2 == "" {
			return fmt.Errorf("-scenario failover requires -url (primary) and -url2 (follower)")
		}
		return runFailover(failoverSpec{
			primary:  strings.TrimRight(*url, "/"),
			follower: strings.TrimRight(*url2, "/"),
			keys:     *keys,
			workers:  conns[0],
			phase:    *dur,
		}, out)
	case "crash":
		if *tkvdBin == "" {
			return fmt.Errorf("-scenario crash requires -tkvd (path to the tkvd binary)")
		}
		if *kills <= 0 {
			return fmt.Errorf("-kills must be positive")
		}
		wd := *waldirArg
		if wd == "" {
			tmp, err := os.MkdirTemp("", "tkvload-crash-wal-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			wd = tmp
		}
		switch *walMode {
		case "shared", "pershard":
		default:
			return fmt.Errorf("unknown -walmode %q (shared or pershard)", *walMode)
		}
		return runCrash(crashSpec{
			tkvd:    *tkvdBin,
			waldir:  wd,
			walmode: *walMode,
			keys:    *keys,
			workers: conns[0],
			phase:   *dur,
			kills:   *kills,
		}, out)
	default:
		return fmt.Errorf("unknown -scenario %q (want failover or crash)", *scenario)
	}

	if *sweepMode == "sched" {
		sp := sweepSpec{
			cfg:       cfg,
			zipfs:     zipfs,
			conns:     conns,
			shards:    *shards,
			pool:      *pool,
			buckets:   *buckets,
			admitKnee: *admitKnee,
			admitMax:  *admitMax,
			minShed:   *minShed,
			csv:       *csv,
			jsonPath:  *jsonPath,
		}
		if err := sp.parseConfigs(*schedArg, *engineArg); err != nil {
			return err
		}
		return runSchedSweep(sp, out)
	}
	if *sweepMode == "wal" {
		if len(zipfs) != 1 {
			return fmt.Errorf("-zipf must be a single value with -sweep wal")
		}
		cfg.zipfS = zipfs[0]
		return runWalSweep(walSweepSpec{
			cfg:      cfg,
			conns:    conns,
			shards:   *shards,
			pool:     *pool,
			buckets:  *buckets,
			csv:      *csv,
			jsonPath: *jsonPath,
		}, out)
	}
	if *sweepMode != "" {
		return fmt.Errorf("unknown -sweep mode %q (want sched or wal)", *sweepMode)
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	if len(zipfs) != 1 {
		return fmt.Errorf("-zipf must be a single value outside -sweep sched")
	}
	cfg.zipfS = zipfs[0]

	d := &driver{tcpaddr: *tcpaddr, cfg: cfg}
	maxConns := 0
	for _, n := range conns {
		maxConns = max(maxConns, n)
	}
	d.control = &httpKV{
		base: strings.TrimRight(*url, "/"),
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        maxConns * 2,
				MaxIdleConnsPerHost: maxConns * 2,
			},
		},
	}

	// Seed every counter key so CAS loops always find a value.
	if err := d.seedCounters(); err != nil {
		return err
	}

	mode := "closed-loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f ops/s", *rate)
	}
	table := report.NewTable(
		fmt.Sprintf("tkvload %s proto=%s (%s, read=%.2f mget=%.2f batch=%.2f cas=%.2f overlap=%.2f zipf=%g pipeline=%d)",
			strings.TrimRight(*url, "/"), strings.Join(protos, ","), mode, *readFrac, *mgetFrac,
			*batchFrac, *batchCAS, *overlap, cfg.zipfS, *pipeline),
		"conns", "ops/s and latency (us)")
	bench := benchJSON{
		Tool:      "tkvload",
		Mode:      mode,
		Protos:    strings.Join(protos, ","),
		Pipeline:  *pipeline,
		WarmupSec: warmup.Seconds(),
		ReadFrac:  *readFrac,
		MGetFrac:  *mgetFrac,
		BatchFrac: *batchFrac,
		BatchSize: *batchSize,
		BatchCAS:  *batchCAS,
		AddFrac:   *addFrac,
		Overlap:   *overlap,
		Zipf:      cfg.zipfS,
		Keys:      *keys,
		Blobs:     *blobs,
		DurSec:    dur.Seconds(),
	}
	for _, proto := range protos {
		pfx := ""
		if len(protos) > 1 {
			pfx = proto + " "
		}
		for _, n := range conns {
			clients, workers, teardown, err := d.setup(proto, n)
			if err != nil {
				return fmt.Errorf("%s setup (%d conns): %w", proto, n, err)
			}
			cell := d.drive(clients, workers)
			teardown()
			opsPerSec := float64(cell.ops) / cell.elapsed.Seconds()
			table.Add(pfx+"ops/s", n, opsPerSec)
			table.Add(pfx+"p50us", n, float64(cell.hist.Quantile(0.50)))
			table.Add(pfx+"p95us", n, float64(cell.hist.Quantile(0.95)))
			table.Add(pfx+"p99us", n, float64(cell.hist.Quantile(0.99)))
			table.Add(pfx+"errors", n, float64(cell.errs))
			table.Add(pfx+"sheds", n, float64(cell.sheds))
			cj := cellJSON{
				Proto:     proto,
				Conns:     n,
				Ops:       cell.ops,
				OpsPerSec: opsPerSec,
				P50us:     cell.hist.Quantile(0.50),
				P95us:     cell.hist.Quantile(0.95),
				P99us:     cell.hist.Quantile(0.99),
				Errors:    cell.errs,
				Sheds:     cell.sheds,
			}
			if proto == protoTCP {
				cj.Pipeline = *pipeline
			}
			bench.Cells = append(bench.Cells, cj)
		}
	}
	if *csv {
		table.WriteCSV(out)
	} else {
		table.WriteText(out)
	}

	var verifyErr error
	if *verifyEnd {
		bench.Verify, verifyErr = d.verify(out)
	}
	if verifyErr == nil && *minShed > 0 && d.shedSeen.Load() < *minShed {
		verifyErr = fmt.Errorf("backpressure expected: %d requests shed, -minshed %d",
			d.shedSeen.Load(), *minShed)
	}
	if *jsonPath != "" {
		if err := report.SaveJSON(*jsonPath, bench); err != nil {
			if verifyErr != nil {
				// Don't let an artifact-write failure mask an invariant
				// violation; the violation is the run's result.
				fmt.Fprintln(out, "tkvload: writing", *jsonPath, "failed:", err)
				return verifyErr
			}
			return err
		}
	}
	return verifyErr
}

// benchJSON is the machine-readable form of one tkvload run, written by
// -json so future PRs have a perf trajectory to diff against (the committed
// BENCH_tkv.json at the repository root is one of these). Pre-protocol
// artifacts lack the proto/pipeline/warmup fields; they decode with zero
// values and their cells read as HTTP cells measured without warm-up.
type benchJSON struct {
	Tool      string      `json:"tool"`
	Mode      string      `json:"mode"`
	Protos    string      `json:"protos,omitempty"`
	Pipeline  int         `json:"pipeline,omitempty"`
	WarmupSec float64     `json:"warmupSec,omitempty"`
	ReadFrac  float64     `json:"readFrac"`
	MGetFrac  float64     `json:"mgetFrac,omitempty"`
	BatchFrac float64     `json:"batchFrac"`
	BatchSize int         `json:"batchSize"`
	BatchCAS  float64     `json:"batchCASFrac,omitempty"`
	AddFrac   float64     `json:"addFrac,omitempty"`
	Overlap   float64     `json:"overlap"`
	Zipf      float64     `json:"zipf"`
	Keys      int         `json:"keys"`
	Blobs     int         `json:"blobs"`
	DurSec    float64     `json:"durationSecPerCell"`
	Cells     []cellJSON  `json:"cells"`
	Verify    *verifyJSON `json:"verify,omitempty"`
}

// cellJSON is one swept (protocol, connection count) measurement.
type cellJSON struct {
	Proto     string  `json:"proto,omitempty"`
	Conns     int     `json:"conns"`
	Pipeline  int     `json:"pipeline,omitempty"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"opsPerSec"`
	P50us     uint64  `json:"p50us"`
	P95us     uint64  `json:"p95us"`
	P99us     uint64  `json:"p99us"`
	Errors    uint64  `json:"errors"`
	Sheds     uint64  `json:"sheds,omitempty"`
}

// verifyJSON is the end-of-run invariant check's outcome.
type verifyJSON struct {
	Commits        uint64 `json:"commits"`
	Aborts         uint64 `json:"aborts"`
	Serializations uint64 `json:"serializations"`
	SchedConfirmed uint64 `json:"schedConfirmed,omitempty"`
	SchedRefuted   uint64 `json:"schedRefuted,omitempty"`
	StripeWaits    uint64 `json:"stripeWaits"`
	ROFallbacks    uint64 `json:"roFallbacks"`
	ServerShed     uint64 `json:"serverShed,omitempty"`
	ServerRouted   uint64 `json:"serverRouted,omitempty"`
	CounterSum     uint64 `json:"counterSum"`
	Increments     uint64 `json:"increments"`
	CASMismatches  uint64 `json:"batchCASMismatches"`
	// Wal* record the server's durability watermarks at verification
	// time (absent when the server runs without a WAL).
	WalMode       string  `json:"walMode,omitempty"`
	WalGroupMean  float64 `json:"walGroupMean,omitempty"`
	WalFsyncP99us uint64  `json:"walFsyncP99us,omitempty"`
	WalDurableLag uint64  `json:"walDurableLag,omitempty"`
	OK            bool    `json:"ok"`

	// walAppends/walFsyncs carry raw counters to the wal sweep's cell
	// rows; they are not part of the marshaled verify summary.
	walAppends uint64
	walFsyncs  uint64
}

// loadConfig is the per-run workload shape.
type loadConfig struct {
	dur, warmup         time.Duration
	rate                float64
	keys, blobs         int
	readFrac, batchFrac float64
	mgetFrac            float64
	batchSize           int
	batchCAS            float64
	overlap             float64
	addFrac             float64
	zipfS               float64
	seed                int64
	pipeline            int
}

// kvClient is the store surface the workload drives, implemented over
// HTTP/JSON and over the binary wire protocol. One kvClient may be shared
// by several workers (the tcp client pipelines their requests on one
// connection).
type kvClient interface {
	get(key uint64) (string, bool, error)
	put(key uint64, val string) error
	del(key uint64) error
	cas(key uint64, old, new string) (swapped bool, err error)
	add(key uint64, delta int64) error
	mget(keys []uint64) ([]tkv.OpResult, error)
	batch(ops []tkv.Op) (mismatch bool, nres int, err error)
	snapshot() (map[uint64]string, error)
	stats() (tkv.Stats, error)
}

// driver owns the workload configuration and the cross-cell increment
// tally. Seeding and verification always run over the HTTP control client;
// the measured traffic goes through whatever kvClient the swept protocol
// dictates.
type driver struct {
	control kvClient
	tcpaddr string
	cfg     loadConfig

	// Successful transactional increments, accumulated across cells; the
	// final counter sum must equal their total.
	casIncrs   atomic.Uint64
	batchAdds  atomic.Uint64
	serverAdds atomic.Uint64
	// shedSeen counts backpressure rejections across warm-up and
	// measurement alike (the -minshed assertion is about the whole run).
	shedSeen atomic.Uint64
	// batchCASMisses counts batches the server refused whole (a cas op's
	// compare failed): zero increments, but not an error.
	batchCASMisses atomic.Uint64
	// blobCorrupt counts blob reads whose value named another key.
	blobCorrupt atomic.Uint64
}

// seedCounters writes "0" to every counter key over the control client so
// CAS loops always find a value. A shedding server (tkvd -admit in drill
// mode, as the CI e2e runs it) rejects writes probabilistically, so each
// key retries through backpressure; any other error is fatal immediately.
func (d *driver) seedCounters() error {
	const seedAttempts = 200
	for k := 0; k < d.cfg.keys; k++ {
		var err error
		for attempt := 0; attempt < seedAttempts; attempt++ {
			if err = d.control.put(uint64(k), "0"); err == nil {
				break
			}
			if !errors.Is(err, tkv.ErrBackpressure) {
				return fmt.Errorf("seeding counters: %w", err)
			}
			time.Sleep(time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("seeding counter %d: every attempt shed: %w", k, err)
		}
	}
	return nil
}

// setup builds one cell's clients: how many workers drive them and how they
// map. HTTP workers share the pooled http.Client; tcp workers share n
// pipelined connections, cfg.pipeline workers per connection.
func (d *driver) setup(proto string, n int) (clients []kvClient, workers int, teardown func(), err error) {
	switch proto {
	case protoTCP:
		conns := make([]*tkvwire.Conn, 0, n)
		teardown = func() {
			for _, c := range conns {
				c.Close()
			}
		}
		for i := 0; i < n; i++ {
			c, err := tkvwire.Dial(d.tcpaddr)
			if err != nil {
				teardown()
				return nil, 0, nil, err
			}
			conns = append(conns, c)
			clients = append(clients, &tcpKV{c: c})
		}
		return clients, n * d.cfg.pipeline, teardown, nil
	default:
		return []kvClient{d.control}, n, func() {}, nil
	}
}

// cellResult is one swept cell's measurement.
type cellResult struct {
	ops     uint64
	errs    uint64
	sheds   uint64
	elapsed time.Duration
	hist    *trace.Histogram
}

// zipfSampler draws ranks 0..n-1 with P(k) proportional to 1/(k+1)^s, for
// any s > 0. rand.NewZipf only accepts s > 1 (its rejection sampler needs a
// convergent tail); the contention ladder the sweep runs (0.6..1.2) spans
// both sides of 1, so this uses an explicit CDF over the bounded key space
// — exact for any positive s, and a cheap binary search per draw at the key
// counts tkvload uses. The table is immutable after construction and safe
// to share across workers.
type zipfSampler struct {
	cdf []float64
}

func newZipfSampler(n int, s float64) *zipfSampler {
	z := &zipfSampler{cdf: make([]float64, n)}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		z.cdf[k] = sum
	}
	for k := range z.cdf {
		z.cdf[k] /= sum
	}
	return z
}

func (z *zipfSampler) rank(rng *rand.Rand) uint64 {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

// parseZipfLadder parses -zipf: one value, a comma list, or a..b[/step]
// (inclusive, default step 0.2). 0 means uniform; anything else must be > 0.
func parseZipfLadder(arg string) ([]float64, error) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return []float64{0}, nil
	}
	var vals []float64
	appendVal := func(v float64) error {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("-zipf value %g must be 0 (uniform) or > 0", v)
		}
		vals = append(vals, v)
		return nil
	}
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if a, b, ok := strings.Cut(part, ".."); ok {
			step := 0.2
			if b2, st, ok := strings.Cut(b, "/"); ok {
				b = b2
				v, err := strconv.ParseFloat(st, 64)
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("bad -zipf ladder step %q", st)
				}
				step = v
			}
			lo, err1 := strconv.ParseFloat(a, 64)
			hi, err2 := strconv.ParseFloat(b, 64)
			if err1 != nil || err2 != nil || hi < lo {
				return nil, fmt.Errorf("bad -zipf ladder %q (want a..b[/step])", part)
			}
			for v := lo; v <= hi+1e-9; v += step {
				if err := appendVal(math.Round(v*1e6) / 1e6); err != nil {
					return nil, err
				}
			}
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -zipf value %q", part)
		}
		if err := appendVal(v); err != nil {
			return nil, err
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("-zipf named no values")
	}
	return vals, nil
}

// drive runs one cell: cfg.warmup of unmeasured ramp-up, then cfg.dur of
// measured traffic over the given workers. Worker w issues through
// clients[w%len(clients)]. In open-loop mode arrivals are generated at
// cfg.rate regardless of completion, so latency includes queueing delay —
// the serving regime the paper's overload figures are about. (Arrival
// timestamps have the generator's 5ms tick granularity, which bounds the
// latency resolution in that mode.)
func (d *driver) drive(clients []kvClient, workers int) cellResult {
	cell := cellResult{hist: &trace.Histogram{}}
	var ops, errs, sheds atomic.Uint64
	var measuring atomic.Bool
	stop := make(chan struct{})
	var arrivals chan time.Time
	if d.cfg.rate > 0 {
		arrivals = make(chan time.Time, 1<<16)
		go func() {
			// Batch arrivals per tick, scaled by the measured time since
			// the previous fire: per-arrival tickers undershoot badly at
			// sub-millisecond intervals, and tickers coalesce fires under
			// coarse timers, so wall-clock elapsed is the only honest
			// arrival budget.
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			last := time.Now()
			carry := 0.0
			for {
				select {
				case <-stop:
					return
				case t := <-tick.C:
					carry += d.cfg.rate * t.Sub(last).Seconds()
					last = t
					n := int(carry)
					carry -= float64(n)
					for i := 0; i < n; i++ {
						select {
						case arrivals <- t:
						default: // queue full; drop to keep the driver honest
						}
					}
				}
			}
		}()
	}

	// One immutable CDF shared by every worker; each draws with its own rng.
	var zipf *zipfSampler
	if d.cfg.zipfS > 0 {
		zipf = newZipfSampler(d.cfg.keys, d.cfg.zipfS)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		cl := clients[w%len(clients)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(d.cfg.seed + int64(w)*6151 + int64(workers)))
			for {
				var issued time.Time
				if arrivals != nil {
					select {
					case <-stop:
						return
					case issued = <-arrivals:
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
					issued = time.Now()
				}
				// Sampled before issuing, so an op straddling the warm-up
				// boundary is never half-counted.
				record := measuring.Load()
				if err := d.op(cl, rng, zipf, w, workers); err != nil {
					if errors.Is(err, tkv.ErrBackpressure) {
						// Explicit backpressure is the server working as
						// designed under overload, not a failure; it is
						// counted on its own so error rows stay honest.
						d.shedSeen.Add(1)
						if record {
							sheds.Add(1)
						}
					} else if record {
						errs.Add(1)
					}
				} else if record {
					ops.Add(1)
				}
				if record {
					cell.hist.ObserveDuration(time.Since(issued))
				}
			}
		}()
	}
	time.Sleep(d.cfg.warmup)
	measuring.Store(true)
	measureStart := time.Now()
	time.Sleep(d.cfg.dur)
	close(stop)
	wg.Wait()
	cell.elapsed = time.Since(measureStart)
	cell.ops = ops.Load()
	cell.errs = errs.Load()
	cell.sheds = sheds.Load()
	return cell
}

// counterKey picks a counter key, honoring the configured skew.
func (d *driver) counterKey(rng *rand.Rand, zipf *zipfSampler) uint64 {
	if zipf != nil {
		return zipf.rank(rng)
	}
	return uint64(rng.Intn(d.cfg.keys))
}

// op issues one operation of the mix through cl. w and workers identify the
// worker and the cell's worker count, which locate the worker's private key
// slice under -overlap < 1.
func (d *driver) op(cl kvClient, rng *rand.Rand, zipf *zipfSampler, w, workers int) error {
	if rng.Float64() < d.cfg.readFrac {
		if d.cfg.mgetFrac > 0 && rng.Float64() < d.cfg.mgetFrac {
			return d.mget(cl, rng, zipf)
		}
		if rng.Intn(2) == 0 {
			_, _, err := cl.get(d.counterKey(rng, zipf))
			return err
		}
		return d.getBlob(cl, rng)
	}
	if rng.Float64() < d.cfg.batchFrac {
		return d.batch(cl, rng, zipf, w, workers)
	}
	if d.cfg.addFrac > 0 && rng.Float64() < d.cfg.addFrac {
		// A server-side add is the leanest transactional increment: one
		// STM transaction per op on a skew-drawn counter key — the
		// single-key hot write the admission layer routes and sheds.
		if err := cl.add(d.counterKey(rng, zipf), 1); err != nil {
			return err
		}
		d.serverAdds.Add(1)
		return nil
	}
	switch rng.Intn(5) {
	case 0, 1:
		return d.casIncrement(cl, rng, zipf)
	case 2, 3:
		key := blobBase + uint64(rng.Intn(d.cfg.blobs))
		return cl.put(key, fmt.Sprintf("%d:%d", key, rng.Int63()))
	default:
		return cl.del(blobBase + uint64(rng.Intn(d.cfg.blobs)))
	}
}

// batchKey picks one key for a batch op: with probability cfg.overlap from
// the whole counter space (honoring skew), otherwise uniformly from the
// worker's private slice of it — the knob that makes concurrent batches
// key-disjoint (-overlap 0) or maximally contended (-overlap 1).
func (d *driver) batchKey(rng *rand.Rand, zipf *zipfSampler, w, workers int) uint64 {
	if rng.Float64() < d.cfg.overlap {
		return d.counterKey(rng, zipf)
	}
	span := d.cfg.keys / workers
	if span == 0 {
		return d.counterKey(rng, zipf)
	}
	return uint64(w%workers*span + rng.Intn(span))
}

// casIncrement performs a client-side read-modify-write: read the counter,
// CAS it one higher, retry on interference.
func (d *driver) casIncrement(cl kvClient, rng *rand.Rand, zipf *zipfSampler) error {
	key := d.counterKey(rng, zipf)
	for attempt := 0; attempt < casAttempts; attempt++ {
		cur, found, err := cl.get(key)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("counter key %d missing", key)
		}
		n, err := strconv.ParseInt(cur, 10, 64)
		if err != nil {
			return fmt.Errorf("counter key %d holds %q", key, cur)
		}
		swapped, err := cl.cas(key, cur, strconv.FormatInt(n+1, 10))
		if err != nil {
			return err
		}
		if swapped {
			d.casIncrs.Add(1)
			return nil
		}
	}
	// The increment never succeeded; nothing was counted, so the
	// invariant is unaffected. Report it as an error observation.
	return fmt.Errorf("cas on key %d starved after %d attempts", key, casAttempts)
}

// batch issues one atomic batch of +1 increments: adds, with a -batchcas
// fraction of them as cas increments (read the counter, then cas it one
// higher inside the batch). Every op of an accepted batch increments its
// key by exactly 1, so the tally is the op count; a refused batch (some
// cas compare lost a race) wrote nothing and tallies zero.
func (d *driver) batch(cl kvClient, rng *rand.Rand, zipf *zipfSampler, w, workers int) error {
	ops := make([]tkv.Op, d.cfg.batchSize)
	for i := range ops {
		key := d.batchKey(rng, zipf, w, workers)
		if d.cfg.batchCAS > 0 && rng.Float64() < d.cfg.batchCAS {
			cur, found, err := cl.get(key)
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("counter key %d missing", key)
			}
			n, err := strconv.ParseInt(cur, 10, 64)
			if err != nil {
				return fmt.Errorf("counter key %d holds %q", key, cur)
			}
			ops[i] = tkv.Op{Kind: tkv.OpCAS, Key: key, Old: cur, Value: strconv.FormatInt(n+1, 10)}
		} else {
			ops[i] = tkv.Op{Kind: tkv.OpAdd, Key: key, Delta: 1}
		}
	}
	mismatch, nres, err := cl.batch(ops)
	if err != nil {
		return err
	}
	if mismatch {
		d.batchCASMisses.Add(1)
		return nil
	}
	if nres != len(ops) {
		return fmt.Errorf("batch returned %d results for %d ops", nres, len(ops))
	}
	d.batchAdds.Add(uint64(len(ops)))
	return nil
}

// mget issues one batched multi-key read over the counter space and
// cross-checks that every found value is a well-formed counter.
func (d *driver) mget(cl kvClient, rng *rand.Rand, zipf *zipfSampler) error {
	keys := make([]uint64, d.cfg.batchSize)
	for i := range keys {
		keys[i] = d.counterKey(rng, zipf)
	}
	results, err := cl.mget(keys)
	if err != nil {
		return err
	}
	if len(results) != len(keys) {
		return fmt.Errorf("mget returned %d results for %d keys", len(results), len(keys))
	}
	for i, r := range results {
		if !r.Found {
			continue // not yet seeded in this cell
		}
		if _, err := strconv.ParseUint(r.Value, 10, 64); err != nil {
			return fmt.Errorf("mget counter key %d holds %q", keys[i], r.Value)
		}
	}
	return nil
}

// getBlob reads a random blob key and cross-checks that the value names the
// key it was stored under.
func (d *driver) getBlob(cl kvClient, rng *rand.Rand) error {
	key := blobBase + uint64(rng.Intn(d.cfg.blobs))
	val, found, err := cl.get(key)
	if err != nil {
		return err
	}
	if found && !strings.HasPrefix(val, fmt.Sprintf("%d:", key)) {
		d.blobCorrupt.Add(1)
		return fmt.Errorf("blob key %d holds foreign value %q", key, val)
	}
	return nil
}

// verify pulls a consistent snapshot and the server stats over the control
// client and checks the run's invariants. The returned summary is embedded
// in the -json artifact even when a check fails (with OK=false), so a
// broken run is recorded, not hidden.
func (d *driver) verify(out io.Writer) (*verifyJSON, error) {
	res := &verifyJSON{Increments: d.casIncrs.Load() + d.batchAdds.Load() + d.serverAdds.Load()}
	snap, err := d.control.snapshot()
	if err != nil {
		return res, fmt.Errorf("snapshot: %w", err)
	}
	var sum uint64
	for k := 0; k < d.cfg.keys; k++ {
		v, ok := snap[uint64(k)]
		if !ok {
			return res, fmt.Errorf("counter key %d vanished", k)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return res, fmt.Errorf("counter key %d holds %q", k, v)
		}
		sum += n
	}
	res.CounterSum = sum
	want := res.Increments
	stats, err := d.control.stats()
	if err != nil {
		return res, fmt.Errorf("stats: %w", err)
	}
	res.Commits = stats.Commits
	res.Aborts = stats.Aborts
	res.Serializations = stats.Serializations
	res.SchedConfirmed = stats.SchedConfirmed
	res.SchedRefuted = stats.SchedRefuted
	res.StripeWaits = stats.StripeWaitsShared + stats.StripeWaitsExcl
	res.ROFallbacks = stats.ROFallbacks
	res.ServerShed = stats.Shed
	res.ServerRouted = stats.Routed
	res.CASMismatches = d.batchCASMisses.Load()
	if ws := stats.Wal; ws != nil {
		res.WalMode = string(ws.Mode)
		res.WalGroupMean = ws.GroupMean
		res.WalFsyncP99us = ws.FsyncP99us
		res.WalDurableLag = ws.DurableLag()
		res.walAppends = ws.Appends
		res.walFsyncs = ws.Fsyncs
		fmt.Fprintf(out, "verify: wal mode=%s appends=%d fsyncs=%d group_mean=%.1f fsync_p99=%dµs durable_lag=%d sync=%v\n",
			ws.Mode, ws.Appends, ws.Fsyncs, ws.GroupMean, ws.FsyncP99us, res.WalDurableLag, ws.Sync)
	}
	fmt.Fprintf(out, "verify: committed=%d aborts=%d serializations=%d stripeWaits=%d roFallbacks=%d shed=%d routed=%d counterSum=%d increments=%d (cas=%d batchOps=%d adds=%d casMismatchedBatches=%d)\n",
		stats.Commits, stats.Aborts, stats.Serializations, res.StripeWaits, res.ROFallbacks,
		res.ServerShed, res.ServerRouted,
		sum, want, d.casIncrs.Load(), d.batchAdds.Load(), d.serverAdds.Load(), res.CASMismatches)
	if sum < want {
		return res, fmt.Errorf("LOST UPDATES: counters sum to %d but %d increments succeeded", sum, want)
	}
	if sum > want {
		// The opposite mismatch is a driver-side undercount: an
		// increment committed server-side but its response was lost
		// (timeout, reset), so it was tallied as an error instead.
		return res, fmt.Errorf("uncounted increments: counters sum to %d but only %d increments were acknowledged (a CAS/batch response was likely lost in flight)", sum, want)
	}
	if d.blobCorrupt.Load() > 0 {
		return res, fmt.Errorf("%d blob reads returned foreign values", d.blobCorrupt.Load())
	}
	if stats.Commits == 0 {
		return res, fmt.Errorf("server committed zero transactions")
	}
	res.OK = true
	fmt.Fprintln(out, "verify: OK (zero lost updates)")
	return res, nil
}

// ---- binary wire protocol client ----

// tcpKV adapts one pipelined tkvwire connection to the kvClient surface.
// Many workers share one tcpKV; the connection interleaves their requests.
type tcpKV struct {
	c *tkvwire.Conn
}

func (t *tcpKV) get(key uint64) (string, bool, error) { return t.c.Get(key) }

func (t *tcpKV) put(key uint64, val string) error {
	_, err := t.c.Put(key, val)
	return err
}

func (t *tcpKV) del(key uint64) error {
	_, err := t.c.Delete(key)
	return err
}

func (t *tcpKV) cas(key uint64, old, new string) (bool, error) {
	return t.c.CAS(key, old, new)
}

func (t *tcpKV) add(key uint64, delta int64) error {
	_, err := t.c.Add(key, delta)
	return err
}

func (t *tcpKV) mget(keys []uint64) ([]tkv.OpResult, error) { return t.c.MGet(keys) }

func (t *tcpKV) batch(ops []tkv.Op) (bool, int, error) {
	results, err := t.c.Batch(ops)
	if errors.Is(err, tkv.ErrCASMismatch) {
		return true, len(results), nil
	}
	if err != nil {
		return false, 0, err
	}
	return false, len(results), nil
}

func (t *tcpKV) snapshot() (map[uint64]string, error) { return t.c.Snapshot() }

func (t *tcpKV) stats() (tkv.Stats, error) { return t.c.Stats() }

// ---- in-process client (sched sweep) ----

// localKV drives a self-hosted store directly; the sched sweep uses it for
// seeding and verification so those never ride the protocol under test.
type localKV struct {
	st *tkv.Store
}

func (l *localKV) get(key uint64) (string, bool, error) { return l.st.Get(key) }

func (l *localKV) put(key uint64, val string) error {
	_, err := l.st.Put(key, val)
	return err
}

func (l *localKV) del(key uint64) error {
	_, err := l.st.Delete(key)
	return err
}

func (l *localKV) cas(key uint64, old, new string) (bool, error) {
	return l.st.CAS(key, old, new)
}

func (l *localKV) add(key uint64, delta int64) error {
	_, err := l.st.Add(key, delta)
	return err
}

func (l *localKV) mget(keys []uint64) ([]tkv.OpResult, error) { return l.st.MGet(keys) }

func (l *localKV) batch(ops []tkv.Op) (bool, int, error) {
	results, err := l.st.Batch(ops)
	if errors.Is(err, tkv.ErrCASMismatch) {
		return true, len(results), nil
	}
	if err != nil {
		return false, 0, err
	}
	return false, len(results), nil
}

func (l *localKV) snapshot() (map[uint64]string, error) { return l.st.Snapshot() }

func (l *localKV) stats() (tkv.Stats, error) { return l.st.Stats(), nil }

// ---- HTTP client ----

// wire is a pooled response-read buffer: the driver's own per-response
// decoder allocations shouldn't pollute the latency it is measuring. Only
// the response side is pooled — a response body is fully drained
// synchronously inside do() before the buffer is reused, whereas a pooled
// *request* body would race with the transport's background write loop
// whenever the server answers before reading the whole body (early non-200,
// reset), so request bodies stay freshly allocated per call.
type wire struct {
	resp bytes.Buffer
}

var wirePool = sync.Pool{New: func() any { return new(wire) }}

// httpKV drives the HTTP/JSON surface through a pooled http.Client. It is
// also the run's control client: seeding and verification always go over
// HTTP regardless of the measured protocol.
type httpKV struct {
	base   string
	client *http.Client
}

func (h *httpKV) get(key uint64) (string, bool, error) {
	resp, err := h.client.Get(fmt.Sprintf("%s/kv/%d", h.base, key))
	if err != nil {
		return "", false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return "", false, nil
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return "", false, fmt.Errorf("GET key %d: %w", key, tkv.ErrBackpressure)
	}
	if resp.StatusCode != http.StatusOK {
		return "", false, fmt.Errorf("GET key %d: status %d", key, resp.StatusCode)
	}
	w := wirePool.Get().(*wire)
	defer wirePool.Put(w)
	w.resp.Reset()
	if _, err := io.Copy(&w.resp, resp.Body); err != nil {
		return "", false, err
	}
	var body struct {
		Value string `json:"value"`
	}
	if err := json.Unmarshal(w.resp.Bytes(), &body); err != nil {
		return "", false, err
	}
	return body.Value, true, nil
}

func (h *httpKV) put(key uint64, val string) error {
	b, err := json.Marshal(map[string]string{"value": val})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/kv/%d", h.base, key), bytes.NewReader(b))
	if err != nil {
		return err
	}
	return h.do(req, nil, nil)
}

func (h *httpKV) del(key uint64) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/kv/%d", h.base, key), nil)
	if err != nil {
		return err
	}
	return h.do(req, nil, nil)
}

func (h *httpKV) cas(key uint64, old, new string) (bool, error) {
	var resp struct {
		Swapped bool `json:"swapped"`
	}
	err := h.postJSON("/cas", map[string]any{"key": key, "old": old, "new": new}, &resp)
	return resp.Swapped, err
}

func (h *httpKV) add(key uint64, delta int64) error {
	var resp struct {
		Value int64 `json:"value"`
	}
	return h.postJSON("/add", map[string]any{"key": key, "delta": delta}, &resp)
}

func (h *httpKV) mget(keys []uint64) ([]tkv.OpResult, error) {
	var resp struct {
		Results []tkv.OpResult `json:"results"`
	}
	if err := h.postJSON("/mget", map[string]any{"keys": keys}, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// batch posts a batch, distinguishing acceptance (200, returns the result
// count) from a whole-batch cas mismatch (409 with casMismatch set; nothing
// was written).
func (h *httpKV) batch(ops []tkv.Op) (mismatch bool, nres int, err error) {
	b, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		return false, 0, err
	}
	req, err := http.NewRequest(http.MethodPost, h.base+"/batch", bytes.NewReader(b))
	if err != nil {
		return false, 0, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return false, 0, fmt.Errorf("POST /batch: %w", tkv.ErrBackpressure)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return false, 0, fmt.Errorf("POST /batch: status %d", resp.StatusCode)
	}
	w := wirePool.Get().(*wire)
	defer wirePool.Put(w)
	w.resp.Reset()
	if _, err := io.Copy(&w.resp, resp.Body); err != nil {
		return false, 0, err
	}
	var body struct {
		Results     []tkv.OpResult `json:"results"`
		CASMismatch bool           `json:"casMismatch"`
	}
	if err := json.Unmarshal(w.resp.Bytes(), &body); err != nil {
		return false, 0, err
	}
	if resp.StatusCode == http.StatusConflict {
		if !body.CASMismatch {
			return false, 0, fmt.Errorf("POST /batch: 409 without casMismatch")
		}
		return true, len(body.Results), nil
	}
	return false, len(body.Results), nil
}

func (h *httpKV) snapshot() (map[uint64]string, error) {
	snap := map[uint64]string{}
	if err := h.getJSON("/snapshot", &snap); err != nil {
		return nil, err
	}
	return snap, nil
}

func (h *httpKV) stats() (tkv.Stats, error) {
	var stats tkv.Stats
	err := h.getJSON("/stats", &stats)
	return stats, err
}

func (h *httpKV) postJSON(path string, body, into any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, h.base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	return h.do(req, nil, into)
}

func (h *httpKV) getJSON(path string, into any) error {
	req, err := http.NewRequest(http.MethodGet, h.base+path, nil)
	if err != nil {
		return err
	}
	return h.do(req, nil, into)
}

// do sends req and decodes the response into `into` (when non-nil) via w's
// response buffer; a nil w borrows one from the pool.
func (h *httpKV) do(req *http.Request, w *wire, into any) error {
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusServiceUnavailable {
		// The server shed the request under overload: surface the same
		// sentinel the in-process and binary-protocol paths produce.
		return fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, tkv.ErrBackpressure)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if into == nil {
		return nil
	}
	if w == nil {
		w = wirePool.Get().(*wire)
		defer wirePool.Put(w)
	}
	w.resp.Reset()
	if _, err := io.Copy(&w.resp, resp.Body); err != nil {
		return err
	}
	return json.Unmarshal(w.resp.Bytes(), into)
}
