package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTkvd compiles the real tkvd binary for the crash drill — the
// scenario needs a process it can SIGKILL, not an in-process stand-in.
func buildTkvd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tkvd")
	cmd := exec.Command("go", "build", "-o", bin, "github.com/shrink-tm/shrink/cmd/tkvd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tkvd: %v\n%s", err, out)
	}
	return bin
}

// TestCrashScenario runs the SIGKILL drill end to end through the CLI
// entry point, once per WAL layout: kill a WAL-backed tkvd mid-load
// twice, restart it over the same directory, and require the zero-loss
// verdict. The shared-lane subtest is the one that exercises the
// interleaved recovery demux and the one-fsync ack path under a real
// kill -9.
func TestCrashScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	bin := buildTkvd(t)
	for _, mode := range []string{"shared", "pershard"} {
		t.Run(mode, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{
				"-scenario", "crash",
				"-tkvd", bin,
				"-waldir", t.TempDir(),
				"-walmode", mode,
				"-keys", "32",
				"-conns", "4",
				"-kills", "2",
				"-dur", "250ms",
			}, &out)
			if err != nil {
				t.Fatalf("crash scenario: %v\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), "PASS — zero lost acknowledged updates") {
				t.Fatalf("missing pass verdict:\n%s", out.String())
			}
			// Every restart must have recovered through the WAL in the mode
			// under test, not started empty.
			if got := strings.Count(out.String(), "restarted; tkvd: wal"); got != 2 {
				t.Fatalf("expected 2 recovery lines, saw %d:\n%s", got, out.String())
			}
			if got := strings.Count(out.String(), "mode="+mode); got != 2 {
				t.Fatalf("expected 2 mode=%s recovery lines, saw %d:\n%s", mode, got, out.String())
			}
		})
	}
}

func TestCrashScenarioFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "crash"}, &out); err == nil {
		t.Fatal("crash without -tkvd accepted")
	}
}
