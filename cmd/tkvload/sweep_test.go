package main

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseZipfLadder(t *testing.T) {
	cases := []struct {
		arg  string
		want []float64
	}{
		{"0", []float64{0}},
		{"1.2", []float64{1.2}},
		{"0.6,1.2", []float64{0.6, 1.2}},
		{"0.6..1.2", []float64{0.6, 0.8, 1.0, 1.2}},
		{"0.6..1.2/0.3", []float64{0.6, 0.9, 1.2}},
		{"0.5..0.5", []float64{0.5}},
	}
	for _, c := range cases {
		got, err := parseZipfLadder(c.arg)
		if err != nil {
			t.Fatalf("parseZipfLadder(%q): %v", c.arg, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("parseZipfLadder(%q) = %v, want %v", c.arg, got, c.want)
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-9 {
				t.Fatalf("parseZipfLadder(%q) = %v, want %v", c.arg, got, c.want)
			}
		}
	}
	if got, err := parseZipfLadder(""); err != nil || len(got) != 1 || got[0] != 0 {
		t.Fatalf("parseZipfLadder(\"\") = %v, %v — want the uniform default", got, err)
	}
	for _, bad := range []string{"-0.5", "0.6..", "1.2..0.6", "0.6..1.2/0", "x"} {
		if _, err := parseZipfLadder(bad); err == nil {
			t.Fatalf("parseZipfLadder(%q) accepted", bad)
		}
	}
}

func TestParseSweepConfigs(t *testing.T) {
	var sp sweepSpec
	if err := sp.parseConfigs("none,shrink+admit, ats", "swiss, tiny"); err != nil {
		t.Fatal(err)
	}
	if len(sp.engines) != 2 || len(sp.scheds) != 3 {
		t.Fatalf("parsed %v / %+v", sp.engines, sp.scheds)
	}
	if !sp.scheds[1].admit || sp.scheds[1].name != "shrink" {
		t.Fatalf("shrink+admit parsed as %+v", sp.scheds[1])
	}
	if sp.scheds[1].label() != "shrink+admit" {
		t.Fatalf("label = %q", sp.scheds[1].label())
	}
	var bad sweepSpec
	if err := bad.parseConfigs("bogus", "swiss"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if err := bad.parseConfigs("none", "bogus"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestZipfSamplerSkew sanity-checks the bounded-CDF sampler: with positive
// skew the lowest rank must dominate, and s=0 must be ~uniform. (The stock
// rand.Zipf only accepts s > 1; the sweep's ladder needs the s <= 1 half.)
func TestZipfSamplerSkew(t *testing.T) {
	countTop := func(s float64) int {
		z := newZipfSampler(16, s)
		rng := rand.New(rand.NewSource(1))
		top := 0
		for i := 0; i < 4000; i++ {
			if z.rank(rng) == 0 {
				top++
			}
		}
		return top
	}
	uniform, skewed := countTop(0), countTop(1.2)
	if skewed < 2*uniform {
		t.Fatalf("zipf 1.2 drew rank 0 %d times vs %d uniform — not skewed", skewed, uniform)
	}
	if uniform < 100 || uniform > 500 {
		t.Fatalf("s=0 drew rank 0 %d/4000 times, want ~250", uniform)
	}
}

// TestSweepSchedSmoke runs a tiny self-hosted sweep end to end: two configs,
// one zipf point, and checks the JSON artifact tags cells with engine, sched
// and admit, that the admit cell shed under the drill knee, and that every
// cell verified.
func TestSweepSchedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	jsonPath := filepath.Join(t.TempDir(), "contention.json")
	var out bytes.Buffer
	err := run([]string{
		"-sweep", "sched",
		"-scheds", "none,shrink+admit",
		"-engines", "swiss",
		"-zipf", "1.1",
		"-conns", "2",
		"-pipeline", "4",
		"-shards", "2",
		"-pool", "2",
		"-keys", "32",
		"-blobs", "32",
		"-batchsize", "8",
		"-dur", "300ms",
		"-warmup", "100ms",
		"-admitknee", "-1", // drill mode: shedding is deterministic, not load-dependent
		"-minshed", "1",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "verify: OK"); got != 2 {
		t.Fatalf("want 2 verified cells, got %d:\n%s", got, out.String())
	}

	// Re-run writing the JSON artifact and check the cell tags.
	out.Reset()
	err = run([]string{
		"-sweep", "sched",
		"-scheds", "shrink+admit",
		"-engines", "tiny",
		"-zipf", "1.1",
		"-conns", "2",
		"-pipeline", "4",
		"-shards", "2",
		"-pool", "2",
		"-keys", "32",
		"-blobs", "32",
		"-batchsize", "8",
		"-dur", "300ms",
		"-warmup", "100ms",
		"-admitknee", "-1",
		"-minshed", "1",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench contentionJSON
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Tool != "tkvload-sweep-sched" || len(bench.Cells) != 1 {
		t.Fatalf("artifact: %+v", bench)
	}
	c := bench.Cells[0]
	if c.Engine != "tiny" || c.Sched != "shrink" || !c.Admit || c.Zipf != 1.1 {
		t.Fatalf("cell tags: %+v", c)
	}
	if !c.VerifyOK || c.Ops == 0 || c.Commits == 0 {
		t.Fatalf("cell did no verified work: %+v", c)
	}
	if c.Sheds == 0 && c.ServerShed == 0 {
		t.Fatalf("drill-mode cell never shed: %+v", c)
	}
}
