package main

// The failover scenario (-scenario failover) is the kill-and-recover
// drill for tkvd replication: load a primary that is streaming to a
// follower, quit the primary mid-load, promote the follower, redirect
// the load, and verify that not one acknowledged increment was lost.
//
// Workers perform server-side add increments (each a committed
// transaction) against whichever server is currently primary and tally
// only acknowledged successes. Failed requests — fenced writes during
// the drain window, dead connections during the switch, 421s from the
// not-yet-promoted follower — simply retry and count nothing. At the
// end the counter sum on the promoted follower must be at least the
// acked tally: a shortfall is a lost acknowledged write and fails the
// run. A small surplus is tolerated with a warning (an increment can
// commit and then lose its ack to the dying connection; that is an
// unacknowledged success, not a loss).

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

type failoverSpec struct {
	primary  string // primary base URL (load starts here; gets /quit)
	follower string // follower base URL (gets /promote; verified at the end)
	keys     int    // counter keys, seeded on the primary
	workers  int
	phase    time.Duration // load duration before the kill and after the promote
}

func runFailover(sp failoverSpec, out io.Writer) error {
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        sp.workers * 2,
			MaxIdleConnsPerHost: sp.workers * 2,
		},
	}
	primary := &httpKV{base: sp.primary, client: client}
	follower := &httpKV{base: sp.follower, client: client}

	for k := 0; k < sp.keys; k++ {
		if err := primary.put(uint64(k), "0"); err != nil {
			return fmt.Errorf("seeding counter %d: %w", k, err)
		}
	}

	var target atomic.Pointer[httpKV]
	target.Store(primary)
	var acked atomic.Uint64
	var failed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < sp.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64((w*7919 + i) % sp.keys)
				if err := target.Load().add(key, 1); err == nil {
					acked.Add(1)
				} else {
					failed.Add(1)
					// The switch window: fenced primary, dead sockets,
					// not-yet-promoted follower. Back off and retry.
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}

	time.Sleep(sp.phase)
	preKill := acked.Load()
	fmt.Fprintf(out, "failover: %d increments acked; quitting the primary\n", preKill)
	if code := post(client, sp.primary+"/quit"); code != http.StatusOK {
		close(stop)
		wg.Wait()
		return fmt.Errorf("POST /quit = %d", code)
	}
	// The primary drains its replication stream before its listeners
	// close, so "the primary is gone" implies "the follower has (or is
	// receiving) everything acknowledged".
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := primary.stats(); err != nil {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			return fmt.Errorf("primary still serving %v after /quit", 15*time.Second)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := post(client, sp.follower+"/promote"); code != http.StatusOK {
		close(stop)
		wg.Wait()
		return fmt.Errorf("POST /promote = %d", code)
	}
	target.Store(follower)
	fmt.Fprintf(out, "failover: follower promoted; load redirected\n")

	time.Sleep(sp.phase)
	close(stop)
	wg.Wait()

	sum := uint64(0)
	snap, err := follower.snapshot()
	if err != nil {
		return fmt.Errorf("verification snapshot: %w", err)
	}
	for k := 0; k < sp.keys; k++ {
		var n uint64
		fmt.Sscanf(snap[uint64(k)], "%d", &n)
		sum += n
	}
	total := acked.Load()
	fmt.Fprintf(out, "failover: acked=%d (pre-kill %d, post-promote %d) counter-sum=%d retried-errors=%d\n",
		total, preKill, total-preKill, sum, failed.Load())
	if sum < total {
		return fmt.Errorf("LOST UPDATES: %d increments acknowledged, counters sum to %d (%d lost)",
			total, sum, total-sum)
	}
	if sum > total {
		fmt.Fprintf(out, "failover: %d unacknowledged increments landed (committed, ack lost to the dying connection) — not a loss\n",
			sum-total)
	}
	fmt.Fprintf(out, "failover: PASS — zero lost acknowledged updates\n")
	return nil
}

// post issues an empty POST and returns the status code (0 on transport
// error).
func post(client *http.Client, url string) int {
	resp, err := client.Post(url, "", nil)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
