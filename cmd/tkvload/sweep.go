// The sched sweep: tkvload self-hosts the store and runs the paper's
// scheduler/engine cross-product through the serving path. Each cell opens
// a fresh tkv.Store with one (engine, scheduler, admission) configuration,
// serves it over the binary wire protocol on a loopback listener, drives
// the configured workload at one zipf skew, verifies the zero-lost-update
// invariant, and tears everything down. The zipf ladder (-zipf 0.6..1.2)
// walks the store from mild to pathological contention, so the resulting
// BENCH_tkv_contention.json draws the prevent-vs-cure crossover the paper
// is about: scheduled configs hold throughput past the overload knee where
// the unscheduled config collapses into abort-retry work, and admission
// keeps latency bounded by shedding instead of queueing.
package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"

	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/report"
	"github.com/shrink-tm/shrink/internal/tkv"
	"github.com/shrink-tm/shrink/internal/tkvwire"
)

// schedSpec is one swept scheduler configuration: a scheduler name as
// accepted by enginecfg, optionally with the admission layer on top.
type schedSpec struct {
	name  string
	admit bool
}

func (s schedSpec) label() string {
	if s.admit {
		return s.name + "+admit"
	}
	return s.name
}

// sweepSpec is the full sched-sweep request.
type sweepSpec struct {
	cfg                   loadConfig
	engines               []string
	scheds                []schedSpec
	zipfs                 []float64
	conns                 []int
	shards, pool, buckets int
	// admitKnee/admitMax override the admission controller's operating
	// point for '+admit' configs (0 keeps the default). The default knee
	// is calibrated for cures-per-commit on single-key traffic; batch
	// heavy sweeps inflate the commit denominator, so drawing the
	// crossover usually wants an explicit knee.
	admitKnee, admitMax float64
	minShed             uint64
	csv                 bool
	jsonPath            string
}

// parseConfigs fills engines and scheds from the -scheds / -engines flags.
func (sp *sweepSpec) parseConfigs(schedArg, engineArg string) error {
	for _, e := range strings.Split(engineArg, ",") {
		e = strings.TrimSpace(e)
		switch e {
		case enginecfg.EngineSwiss, enginecfg.EngineTiny:
			sp.engines = append(sp.engines, e)
		default:
			return fmt.Errorf("unknown engine %q (want swiss or tiny)", e)
		}
	}
	for _, s := range strings.Split(schedArg, ",") {
		s = strings.TrimSpace(s)
		spec := schedSpec{name: s}
		if name, ok := strings.CutSuffix(s, "+admit"); ok {
			spec = schedSpec{name: name, admit: true}
		}
		switch spec.name {
		case enginecfg.SchedNone, enginecfg.SchedShrink, enginecfg.SchedATS,
			enginecfg.SchedPool, enginecfg.SchedAdaptive:
			sp.scheds = append(sp.scheds, spec)
		default:
			return fmt.Errorf("unknown scheduler %q in -scheds", s)
		}
	}
	if len(sp.engines) == 0 || len(sp.scheds) == 0 {
		return fmt.Errorf("-engines and -scheds must each name at least one config")
	}
	return nil
}

// contentionJSON is the machine-readable sched sweep, written by -json
// (the committed BENCH_tkv_contention.json is one of these).
type contentionJSON struct {
	Tool      string          `json:"tool"`
	ReadFrac  float64         `json:"readFrac"`
	MGetFrac  float64         `json:"mgetFrac,omitempty"`
	BatchFrac float64         `json:"batchFrac"`
	BatchSize int             `json:"batchSize"`
	BatchCAS  float64         `json:"batchCASFrac,omitempty"`
	AddFrac   float64         `json:"addFrac,omitempty"`
	Overlap   float64         `json:"overlap"`
	Keys      int             `json:"keys"`
	Blobs     int             `json:"blobs"`
	Shards    int             `json:"shards"`
	Pool      int             `json:"pool"`
	Pipeline  int             `json:"pipeline"`
	AdmitKnee float64         `json:"admitKnee,omitempty"`
	AdmitMax  float64         `json:"admitMax,omitempty"`
	Procs     int             `json:"gomaxprocs"`
	WarmupSec float64         `json:"warmupSec"`
	DurSec    float64         `json:"durationSecPerCell"`
	Cells     []schedCellJSON `json:"cells"`
}

// schedCellJSON is one (engine, sched, zipf, conns) measurement, tagged so
// downstream tooling can slice the cross-product any way it likes.
type schedCellJSON struct {
	Engine         string  `json:"engine"`
	Sched          string  `json:"sched"`
	Admit          bool    `json:"admit,omitempty"`
	Zipf           float64 `json:"zipf"`
	Conns          int     `json:"conns"`
	Ops            uint64  `json:"ops"`
	OpsPerSec      float64 `json:"opsPerSec"`
	P50us          uint64  `json:"p50us"`
	P95us          uint64  `json:"p95us"`
	P99us          uint64  `json:"p99us"`
	Errors         uint64  `json:"errors"`
	Sheds          uint64  `json:"sheds,omitempty"`
	Commits        uint64  `json:"commits"`
	Aborts         uint64  `json:"aborts"`
	Serializations uint64  `json:"serializations"`
	SchedConfirmed uint64  `json:"schedConfirmed,omitempty"`
	SchedRefuted   uint64  `json:"schedRefuted,omitempty"`
	StripeWaits    uint64  `json:"stripeWaits"`
	ServerShed     uint64  `json:"serverShed,omitempty"`
	ServerRouted   uint64  `json:"serverRouted,omitempty"`
	VerifyOK       bool    `json:"verifyOK"`
}

// runSchedSweep runs the whole cross-product. Every cell verifies its own
// zero-lost-update invariant; the first violation fails the run (after the
// JSON artifact is written, so a broken cell is recorded, not hidden).
func runSchedSweep(sp sweepSpec, out io.Writer) error {
	table := report.NewTable(
		fmt.Sprintf("tkvload sched sweep (self-hosted, shards=%d pool=%d read=%.2f batch=%.2f add=%.2f conns=%v pipeline=%d)",
			sp.shards, sp.pool, sp.cfg.readFrac, sp.cfg.batchFrac, sp.cfg.addFrac, sp.conns, sp.cfg.pipeline),
		"zipf*100", "ops/s by engine/sched")
	bench := contentionJSON{
		Tool:      "tkvload-sweep-sched",
		ReadFrac:  sp.cfg.readFrac,
		MGetFrac:  sp.cfg.mgetFrac,
		BatchFrac: sp.cfg.batchFrac,
		BatchSize: sp.cfg.batchSize,
		BatchCAS:  sp.cfg.batchCAS,
		AddFrac:   sp.cfg.addFrac,
		Overlap:   sp.cfg.overlap,
		Keys:      sp.cfg.keys,
		Blobs:     sp.cfg.blobs,
		Shards:    sp.shards,
		Pool:      sp.pool,
		Pipeline:  sp.cfg.pipeline,
		AdmitKnee: sp.admitKnee,
		AdmitMax:  sp.admitMax,
		Procs:     runtime.GOMAXPROCS(0),
		WarmupSec: sp.cfg.warmup.Seconds(),
		DurSec:    sp.cfg.dur.Seconds(),
	}
	var firstErr error
	var shedTotal uint64
	for _, eng := range sp.engines {
		for _, sc := range sp.scheds {
			for _, z := range sp.zipfs {
				for _, n := range sp.conns {
					label := eng + "/" + sc.label()
					if len(sp.conns) > 1 {
						label = fmt.Sprintf("%s c%d", label, n)
					}
					cell, vres, shedSeen, err := runSchedCell(sp, eng, sc, z, n, out)
					if err != nil && vres == nil {
						// Setup failure, not an invariant violation: a bad
						// config should stop the sweep immediately.
						return fmt.Errorf("%s zipf=%g: %w", label, z, err)
					}
					if err != nil && firstErr == nil {
						firstErr = fmt.Errorf("%s zipf=%g: %w", label, z, err)
					}
					shedTotal += shedSeen
					opsPerSec := float64(cell.ops) / cell.elapsed.Seconds()
					col := int(z * 100)
					table.Add(label+" ops/s", col, opsPerSec)
					table.Add(label+" p99us", col, float64(cell.hist.Quantile(0.99)))
					fmt.Fprintf(out, "cell %s zipf=%.2f conns=%d: %.0f ops/s p50=%dus p99=%dus errs=%d sheds=%d commits=%d aborts=%d serials=%d\n",
						label, z, n, opsPerSec, cell.hist.Quantile(0.50), cell.hist.Quantile(0.99),
						cell.errs, cell.sheds, vres.Commits, vres.Aborts, vres.Serializations)
					bench.Cells = append(bench.Cells, schedCellJSON{
						Engine:         eng,
						Sched:          sc.name,
						Admit:          sc.admit,
						Zipf:           z,
						Conns:          n,
						Ops:            cell.ops,
						OpsPerSec:      opsPerSec,
						P50us:          cell.hist.Quantile(0.50),
						P95us:          cell.hist.Quantile(0.95),
						P99us:          cell.hist.Quantile(0.99),
						Errors:         cell.errs,
						Sheds:          cell.sheds,
						Commits:        vres.Commits,
						Aborts:         vres.Aborts,
						Serializations: vres.Serializations,
						SchedConfirmed: vres.SchedConfirmed,
						SchedRefuted:   vres.SchedRefuted,
						StripeWaits:    vres.StripeWaits,
						ServerShed:     vres.ServerShed,
						ServerRouted:   vres.ServerRouted,
						VerifyOK:       vres.OK,
					})
				}
			}
		}
	}
	if sp.csv {
		table.WriteCSV(out)
	} else {
		table.WriteText(out)
	}
	if firstErr == nil && sp.minShed > 0 && shedTotal < sp.minShed {
		firstErr = fmt.Errorf("backpressure expected: %d requests shed across the sweep, -minshed %d",
			shedTotal, sp.minShed)
	}
	if sp.jsonPath != "" {
		if err := report.SaveJSON(sp.jsonPath, bench); err != nil {
			if firstErr != nil {
				fmt.Fprintln(out, "tkvload: writing", sp.jsonPath, "failed:", err)
				return firstErr
			}
			return err
		}
	}
	return firstErr
}

// runSchedCell measures one configuration at one skew. The returned
// verifyJSON is non-nil whenever the store came up (even when verification
// failed); a nil verifyJSON means the cell never ran.
func runSchedCell(sp sweepSpec, engine string, sc schedSpec, zipf float64, connsN int, out io.Writer) (cellResult, *verifyJSON, uint64, error) {
	var admission *tkv.AdmitConfig
	if sc.admit {
		ac := tkv.DefaultAdmitConfig()
		if sp.admitKnee != 0 {
			ac.ShedKnee = sp.admitKnee
		}
		if sp.admitMax != 0 {
			ac.ShedMax = sp.admitMax
		}
		admission = &ac
	}
	st, err := tkv.Open(tkv.Config{
		Shards:    sp.shards,
		PoolSize:  sp.pool,
		Buckets:   sp.buckets,
		Engine:    engine,
		Scheduler: sc.name,
		Admission: admission,
	})
	if err != nil {
		return cellResult{}, nil, 0, err
	}
	defer st.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cellResult{}, nil, 0, err
	}
	srv := tkvwire.NewServer(st)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-serveDone; !errors.Is(err, tkvwire.ErrServerClosed) {
			fmt.Fprintln(out, "tkvload: wire server:", err)
		}
	}()

	d := &driver{control: &localKV{st: st}, tcpaddr: ln.Addr().String(), cfg: sp.cfg}
	d.cfg.zipfS = zipf
	if err := d.seedCounters(); err != nil {
		return cellResult{}, nil, 0, err
	}
	clients, workers, teardown, err := d.setup(protoTCP, connsN)
	if err != nil {
		return cellResult{}, nil, 0, err
	}
	cell := d.drive(clients, workers)
	teardown()
	vres, verr := d.verify(out)
	return cell, vres, d.shedSeen.Load(), verr
}
