package main

import "testing"

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-kernels", "ssca2", "-threads", "2", "-dur", "15ms"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-threads", "zero"}); err == nil {
		t.Fatal("junk threads accepted")
	}
	if err := run([]string{"-kernels", "nope", "-threads", "1", "-dur", "5ms"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
