// Command stamp regenerates the paper's STAMP speedup figures: Figure 6
// (Shrink-SwissTM over base SwissTM) and Figure 10 (Shrink-TinySTM over
// base TinySTM), reporting "speedup - 1" per kernel for underloaded
// (2/4/8 threads) and overloaded (16/32/64) configurations.
//
// Usage:
//
//	stamp -stm swiss
//	stamp -stm tiny -kernels intruder,yada -threads 16,32,64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/shrink-tm/shrink/internal/enginecfg"
	"github.com/shrink-tm/shrink/internal/harness"
	"github.com/shrink-tm/shrink/internal/report"
	"github.com/shrink-tm/shrink/internal/stamp"
	"github.com/shrink-tm/shrink/internal/stm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stamp", flag.ContinueOnError)
	ef := enginecfg.AddFlags(fs)
	var (
		kernels = fs.String("kernels", "", "comma-separated kernels (default: all ten)")
		threads = fs.String("threads", "", "thread counts (default: 2,4,8,16,32,64)")
		dur     = fs.Duration("dur", 200*time.Millisecond, "measurement duration per cell")
		cores   = fs.Int("cores", 8, "emulated core count (GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of text tables")
		reps    = fs.Int("reps", 1, "runs per cell; the median is reported")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine := ef.Engine()
	wait, err := ef.WaitPolicy()
	if err != nil {
		return err
	}

	names := stamp.Names()
	if *kernels != "" {
		names = strings.Split(*kernels, ",")
		for _, n := range names {
			if _, err := stamp.New(n); err != nil {
				return err
			}
		}
	}
	counts := append(harness.StampUnderloaded(), harness.StampOverloaded()...)
	if *threads != "" {
		counts = counts[:0]
		for _, p := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad thread count %q", p)
			}
			counts = append(counts, n)
		}
	}

	table := report.NewTable(
		fmt.Sprintf("STAMP speedup-1 of Shrink-%s over base %s (%s waiting)", engine, engine, ef.WaitLabel()),
		"threads", "speedup - 1")
	for _, name := range names {
		for _, n := range counts {
			base, err := measure(engine, harness.SchedNone, wait, name, n, *dur, *cores, *reps)
			if err != nil {
				return err
			}
			shrink, err := measure(engine, harness.SchedShrink, wait, name, n, *dur, *cores, *reps)
			if err != nil {
				return err
			}
			table.Add(name, n, harness.Speedup(shrink, base)-1)
		}
	}
	if *csv {
		table.WriteCSV(os.Stdout)
	} else {
		table.WriteText(os.Stdout)
	}
	return nil
}

func measure(engine, scheduler string, wait stm.WaitPolicy, kernel string, threads int, dur time.Duration, cores, reps int) (harness.Result, error) {
	return harness.RunMedian(harness.Config{
		Engine:    engine,
		Scheduler: scheduler,
		Wait:      wait,
		Threads:   threads,
		Duration:  dur,
		Cores:     cores,
		Seed:      1,
	}, reps, func() harness.Workload { return stamp.MustNew(kernel) })
}
