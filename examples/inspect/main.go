// Inspect: look *inside* the scheduling dynamics instead of at raw
// throughput. The example runs the contended red-black tree under the base
// TinySTM and under Shrink-TinySTM with tracing enabled, and prints the
// retry distributions (the paper's "wasted work") plus operation-latency
// histograms; then it renders the theory side as an ASCII Gantt chart of
// Serializer versus Restart on the Figure 2(a) instance.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/shrink-tm/shrink/internal/harness"
	"github.com/shrink-tm/shrink/internal/microbench"
	"github.com/shrink-tm/shrink/internal/schedsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== Wasted work under overload: base TinySTM vs Shrink-TinySTM ==")
	fmt.Println("red-black tree, 70% updates, 16 threads on 8 emulated cores")
	fmt.Println()
	for _, scheduler := range []string{harness.SchedNone, harness.SchedShrink} {
		res, err := harness.Run(harness.Config{
			Engine:    harness.EngineTiny,
			Scheduler: scheduler,
			Threads:   16,
			Duration:  250 * time.Millisecond,
			Cores:     8,
			Seed:      5,
			Trace:     true,
		}, func() harness.Workload { return microbench.NewRBTree(4096, 70) })
		if err != nil {
			return err
		}
		fmt.Printf("[%s] tx/s = %.0f\n", scheduler, res.Throughput)
		fmt.Printf("[%s] retries: %s\n", scheduler, res.Retries.Summary())
		fmt.Printf("[%s] op latency (us): %s\n", scheduler, res.OpLatency.String())
		fmt.Println(res.OpLatency.Bars(36))
	}

	fmt.Println("== Theory, drawn: Figure 2(a) with n = 8 ==")
	ins := schedsim.SerializerLowerBound(8)
	fmt.Println("Serializer chains everything behind T2:")
	fmt.Print(schedsim.Gantt(ins, schedsim.SimulateSerializer(ins)))
	fmt.Println()
	fmt.Println("Restart aborts on each release and reschedules optimally:")
	fmt.Print(schedsim.Gantt(ins, schedsim.SimulateRestart(ins, ins)))
	return nil
}
