// Quickstart: the smallest end-to-end use of the library — create a
// SwissTM-like STM with the Shrink scheduler, run concurrent transfer
// transactions, and print the commit/abort statistics.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"github.com/shrink-tm/shrink/internal/cm"
	"github.com/shrink-tm/shrink/internal/sched"
	"github.com/shrink-tm/shrink/internal/stm"
	"github.com/shrink-tm/shrink/internal/stm/swiss"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Build a TM: SwissTM-like engine + Shrink scheduler (the paper's
	//    parameters) + Greedy contention management.
	shrink := sched.NewShrink(sched.DefaultShrinkConfig())
	tm := swiss.New(swiss.Options{
		Scheduler: shrink,
		CM:        &cm.Greedy{},
		Wait:      stm.WaitPreemptive,
	})

	// 2. Shared state is held in typed transactional vars: reads and
	//    writes move int values without interface boxing.
	const accounts = 8
	balance := make([]*stm.TVar[int], accounts)
	for i := range balance {
		balance[i] = stm.NewT(100)
	}

	// 3. Each goroutine registers a Thread and runs transactions with
	//    Atomically. Conflicting transfers retry automatically; Shrink
	//    watches each thread's success rate and serializes transactions
	//    it predicts will conflict.
	const workers, transfers = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := tm.Register(fmt.Sprintf("worker-%d", w))
		rng := rand.New(rand.NewSource(int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := rng.Intn(20)
				_ = th.Atomically(func(tx stm.Tx) error {
					f, err := stm.ReadT(tx, balance[from])
					if err != nil {
						return err
					}
					t, err := stm.ReadT(tx, balance[to])
					if err != nil {
						return err
					}
					if err := stm.WriteT(tx, balance[from], f-amount); err != nil {
						return err
					}
					return stm.WriteT(tx, balance[to], t+amount)
				})
			}
		}()
	}
	wg.Wait()

	// 4. Audit: the total is conserved no matter how contended the run was.
	auditor := tm.Register("auditor")
	var total int
	if err := auditor.Atomically(func(tx stm.Tx) error {
		total = 0
		for _, v := range balance {
			b, err := stm.ReadT(tx, v)
			if err != nil {
				return err
			}
			total += b
		}
		return nil
	}); err != nil {
		return err
	}

	stats := tm.Stats()
	fmt.Printf("total balance: %d (expected %d)\n", total, accounts*100)
	fmt.Printf("commits: %d  aborts: %d  commit rate: %.1f%%\n",
		stats.Commits, stats.Aborts, stats.CommitRate()*100)
	fmt.Printf("shrink serializations: %d\n", shrink.Serializations())
	if total != accounts*100 {
		return fmt.Errorf("money not conserved")
	}
	return nil
}
