// Bank: a contended hot-account workload comparing schedulers side by side.
// A few "hot" accounts receive most transfers (a classic overload pattern);
// the example runs the same workload under the base STM, ATS, Pool and
// Shrink, and prints throughput and abort rates — a miniature of the
// paper's Figure 5 in a single program.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"github.com/shrink-tm/shrink/internal/harness"
	"github.com/shrink-tm/shrink/internal/stm"
)

// hotBank is a harness workload: 64 accounts, 80% of transfers touch the
// 4 hot accounts.
type hotBank struct {
	accounts []*stm.TVar[int]
}

func (b *hotBank) Name() string { return "hot-bank" }

func (b *hotBank) Setup(th stm.Thread) error {
	b.accounts = make([]*stm.TVar[int], 64)
	for i := range b.accounts {
		b.accounts[i] = stm.NewT(1000)
	}
	return nil
}

func (b *hotBank) pick(rng *rand.Rand) int {
	if rng.Intn(100) < 80 {
		return rng.Intn(4) // hot set
	}
	return rng.Intn(len(b.accounts))
}

func (b *hotBank) Op(th stm.Thread, rng *rand.Rand) error {
	from, to := b.pick(rng), b.pick(rng)
	if from == to {
		to = (to + 1) % len(b.accounts)
	}
	amount := rng.Intn(10)
	return th.Atomically(func(tx stm.Tx) error {
		f, err := stm.ReadT(tx, b.accounts[from])
		if err != nil {
			return err
		}
		t, err := stm.ReadT(tx, b.accounts[to])
		if err != nil {
			return err
		}
		if err := stm.WriteT(tx, b.accounts[from], f-amount); err != nil {
			return err
		}
		return stm.WriteT(tx, b.accounts[to], t+amount)
	})
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}
}

func run() error {
	const threads = 16 // overloaded relative to the emulated 8 cores
	fmt.Printf("hot-account bank, %d threads on 8 emulated cores, 300ms per scheduler\n\n", threads)
	fmt.Printf("%-8s %12s %12s %10s\n", "sched", "tx/s", "commits", "abortRate")

	var wg sync.WaitGroup // keeps the comparison sequential but shows intent
	wg.Wait()
	for _, scheduler := range []string{
		harness.SchedNone, harness.SchedATS, harness.SchedPool, harness.SchedShrink,
	} {
		res, err := harness.Run(harness.Config{
			Engine:    harness.EngineSwiss,
			Scheduler: scheduler,
			Threads:   threads,
			Duration:  300 * time.Millisecond,
			Cores:     8,
			Seed:      7,
		}, func() harness.Workload { return &hotBank{} })
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %12.0f %12d %10.3f\n",
			scheduler, res.Throughput, res.Commits, res.AbortRate)
	}
	fmt.Println("\nExpected shape: shrink sustains throughput with fewer aborts than")
	fmt.Println("the base STM; ATS/Pool serialize more coarsely and lose parallelism.")
	return nil
}
