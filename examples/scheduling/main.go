// Scheduling: a walkthrough of the paper's theory (Section 2) on concrete
// instances. It builds the Figure 2 lower-bound families and shows how
// Serializer and ATS degrade linearly with n while the online clairvoyant
// Restart stays within twice the offline optimum — and how one wrong
// prediction (Inaccurate) destroys that guarantee (Theorems 1-3).
package main

import (
	"fmt"

	"github.com/shrink-tm/shrink/internal/schedsim"
)

func main() {
	fmt.Println("== Theorem 1(i): Serializer on the Figure 2(a) family ==")
	fmt.Println("T1,T2 conflict and are released at t=0; T3..Tn (released t=1)")
	fmt.Println("conflict only with T2. Serializer chains everything behind T2.")
	fmt.Println()
	for _, n := range []int{4, 8, 16, 32, 64} {
		ins := schedsim.SerializerLowerBound(n)
		res := schedsim.SimulateSerializer(ins)
		opt, _ := schedsim.OptimalMakespan(ins)
		fmt.Printf("  n=%3d  serializer=%3d  OPT=%d  ratio=%5.1f\n",
			n, res.Makespan, opt, res.Ratio(opt))
	}

	fmt.Println()
	fmt.Println("== Theorem 1(ii): ATS on the Figure 2(b) family (k=4) ==")
	fmt.Println("T1 runs k units; unit-time T2..Tn all conflict with T1, abort k")
	fmt.Println("times each, and end up serialized in ATS's queue.")
	fmt.Println()
	for _, n := range []int{4, 8, 16, 32, 64} {
		ins := schedsim.ATSLowerBound(n, 4)
		res := schedsim.SimulateATS(ins, 4)
		opt, _ := schedsim.OptimalMakespan(ins)
		fmt.Printf("  n=%3d  ats=%3d  OPT=%d  ratio=%5.1f\n",
			n, res.Makespan, opt, res.Ratio(opt))
	}

	fmt.Println()
	fmt.Println("== Theorem 2: Restart (online clairvoyant) is 2-competitive ==")
	fmt.Println("On the same adversarial families, aborting everything at each")
	fmt.Println("release and rescheduling optimally stays within 2x OPT.")
	fmt.Println()
	for _, n := range []int{8, 32} {
		for _, build := range []func() *schedsim.Instance{
			func() *schedsim.Instance { return schedsim.SerializerLowerBound(n) },
			func() *schedsim.Instance { return schedsim.ATSLowerBound(n, 4) },
		} {
			ins := build()
			res := schedsim.SimulateRestart(ins, ins)
			opt, _ := schedsim.OptimalMakespan(ins)
			fmt.Printf("  %-24s restart=%3d  OPT=%d  ratio=%4.2f\n",
				ins.Name, res.Makespan, opt, res.Ratio(opt))
		}
	}

	fmt.Println()
	fmt.Println("== Theorem 3: one wrong prediction costs everything ==")
	fmt.Println("n conflict-free unit jobs, but the scheduler believes they all")
	fmt.Println("share resource R1: it serializes n jobs that OPT runs in 1 step.")
	fmt.Println()
	for _, n := range []int{8, 32, 64} {
		actual, predicted := schedsim.InaccurateLowerBound(n)
		bad := schedsim.SimulateInaccurate(actual, predicted)
		good := schedsim.SimulateRestart(actual, actual)
		fmt.Printf("  n=%3d  inaccurate=%3d  accurate=%d  OPT=1\n",
			n, bad.Makespan, good.Makespan)
	}
	fmt.Println()
	fmt.Println("Moral (the paper's): clairvoyant scheduling helps only as much as")
	fmt.Println("its predictions are right — hence Shrink serializes only when its")
	fmt.Println("confidence-weighted prediction says a conflict is imminent.")
}
