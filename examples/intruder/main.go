// Intruder: the paper's motivating pipeline scenario (Figure 1(b) and the
// intruder discussion in Section 4). Many threads dequeue packets from one
// shared queue, reassemble flows, and run detection. The single dequeue
// point makes every transaction conflict with every other — exactly the
// situation where Shrink's serialization prevents wasted work. The example
// runs the kernel with and without Shrink on both engines and prints the
// throughput ratio.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/shrink-tm/shrink/internal/harness"
	"github.com/shrink-tm/shrink/internal/stamp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "intruder:", err)
		os.Exit(1)
	}
}

func run() error {
	const threads = 16
	fmt.Printf("intruder kernel, %d threads on 8 emulated cores\n\n", threads)
	fmt.Printf("%-7s %-8s %12s %10s\n", "engine", "sched", "tx/s", "abortRate")
	for _, engine := range []string{harness.EngineSwiss, harness.EngineTiny} {
		var base, shrink harness.Result
		for _, scheduler := range []string{harness.SchedNone, harness.SchedShrink} {
			res, err := harness.Run(harness.Config{
				Engine:    engine,
				Scheduler: scheduler,
				Threads:   threads,
				Duration:  300 * time.Millisecond,
				Cores:     8,
				Seed:      3,
			}, func() harness.Workload { return stamp.MustNew("intruder") })
			if err != nil {
				return err
			}
			fmt.Printf("%-7s %-8s %12.0f %10.3f\n",
				engine, scheduler, res.Throughput, res.AbortRate)
			if scheduler == harness.SchedNone {
				base = res
			} else {
				shrink = res
			}
		}
		fmt.Printf("        -> shrink speedup over base %s: %.2fx\n\n",
			engine, harness.Speedup(shrink, base))
	}
	return nil
}
